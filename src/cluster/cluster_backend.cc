#include "cluster/cluster_backend.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>

#include "common/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlkv {
namespace cluster {

namespace {

bool IsHardCode(Status::Code c) {
  return c != Status::Code::kOk && c != Status::Code::kNotFound &&
         c != Status::Code::kBusy;
}

}  // namespace

ClusterBackend::ClusterBackend(ClusterBackendOptions options)
    : options_(std::move(options)) {
  // Sized for concurrent batches, not just one: every caller thread wants
  // up to endpoints-1 helpers at once (the caller runs one sub-batch
  // itself), and a starved pool quietly serializes the scatter — the
  // caller drains the sub-batches one RPC at a time and the fan-out win
  // disappears.
  const size_t threads =
      options_.scatter_threads != 0
          ? options_.scatter_threads
          : std::min<size_t>(16,
                             std::max<size_t>(4, options_.endpoints.size() * 4));
  pool_ = std::make_unique<ThreadPool>(threads);
}

Status ClusterBackend::Connect(const ClusterBackendOptions& options,
                               std::unique_ptr<KvBackend>* out) {
  std::unique_ptr<ClusterBackend> b;
  MLKV_RETURN_NOT_OK(Connect(options, &b));
  *out = std::move(b);
  return Status::OK();
}

Status ClusterBackend::Connect(const ClusterBackendOptions& options,
                               std::unique_ptr<ClusterBackend>* out) {
  if (options.endpoints.empty()) {
    return Status::InvalidArgument("cluster: endpoint list is empty");
  }
  auto b = std::unique_ptr<ClusterBackend>(new ClusterBackend(options));
  Status last = Status::IOError("cluster: no seed endpoint reachable");
  net::RemoteBackend* seed = nullptr;
  for (const std::string& addr : options.endpoints) {
    Endpoint* ep = b->EndpointFor(addr);
    std::lock_guard<std::mutex> lock(ep->mu);
    net::RemoteBackendOptions ro;
    ro.addr = addr;
    ro.pool_size = options.pool_size;
    ro.max_keys_per_rpc = options.max_keys_per_rpc;
    std::unique_ptr<net::RemoteBackend> c;
    last = net::RemoteBackend::Connect(ro, &c);
    if (!last.ok()) continue;
    b->dim_ = c->dim();
    seed = c.get();
    ep->client = std::move(c);
    break;
  }
  if (seed == nullptr) return last;

  std::shared_ptr<const ClusterMap> m;
  Status st = b->FetchMapFrom(seed, &m);
  if (!st.ok()) {
    if (!st.IsNotSupported()) return st;
    // Standalone seeds (no map to serve): derive the round-robin layout
    // client-side. Epoch 0 = unenforced — the servers accept every key.
    auto derived = std::make_shared<ClusterMap>();
    MLKV_RETURN_NOT_OK(BuildClusterMap(options.endpoints, {}, /*route_bits=*/0,
                                       ReadPreference::kPrimary, /*epoch=*/0,
                                       derived.get()));
    m = std::move(derived);
  }
  b->InstallMap(std::move(m));
  *out = std::move(b);
  return Status::OK();
}

std::string ClusterBackend::name() const {
  return "Cluster(n=" + std::to_string(map()->endpoints.size()) + ")";
}

std::shared_ptr<const ClusterMap> ClusterBackend::map() const {
  std::lock_guard<std::mutex> lock(map_mu_);
  return map_;
}

void ClusterBackend::InstallMap(std::shared_ptr<const ClusterMap> m) {
  std::lock_guard<std::mutex> lock(map_mu_);
  map_ = std::move(m);
}

Status ClusterBackend::RefreshMap() {
  // Try every endpoint the current map names, then any seed not in it.
  std::vector<std::string> addrs = map()->endpoints;
  for (const std::string& s : options_.endpoints) {
    if (std::find(addrs.begin(), addrs.end(), s) == addrs.end()) {
      addrs.push_back(s);
    }
  }
  Status last = Status::IOError("cluster: no endpoint served a map");
  for (const std::string& addr : addrs) {
    Endpoint* ep = EndpointFor(addr);
    net::RemoteBackend* client = nullptr;
    Status st = GetClient(ep, &client);
    if (!st.ok()) {
      last = st;
      continue;
    }
    std::shared_ptr<const ClusterMap> m;
    st = FetchMapFrom(client, &m);
    if (!st.ok()) {
      last = st;
      continue;
    }
    std::lock_guard<std::mutex> lock(map_mu_);
    if (m->epoch > map_->epoch) map_ = std::move(m);
    return Status::OK();
  }
  return last;
}

ClusterBackend::Endpoint* ClusterBackend::EndpointFor(const std::string& addr) {
  std::lock_guard<std::mutex> lock(ep_mu_);
  for (const auto& e : endpoints_) {
    if (e->addr == addr) return e.get();
  }
  endpoints_.push_back(std::make_unique<Endpoint>());
  endpoints_.back()->addr = addr;
  return endpoints_.back().get();
}

Status ClusterBackend::GetClient(Endpoint* ep, net::RemoteBackend** out) {
  std::lock_guard<std::mutex> lock(ep->mu);
  if (!ep->client) {
    net::RemoteBackendOptions ro;
    ro.addr = ep->addr;
    ro.pool_size = options_.pool_size;
    ro.max_keys_per_rpc = options_.max_keys_per_rpc;
    std::unique_ptr<net::RemoteBackend> c;
    MLKV_RETURN_NOT_OK(net::RemoteBackend::Connect(ro, &c));
    if (c->dim() != dim_) {
      return Status::InvalidArgument(
          "cluster endpoint " + ep->addr + " serves dim " +
          std::to_string(c->dim()) + ", cluster dim is " +
          std::to_string(dim_));
    }
    ep->client = std::move(c);
  }
  *out = ep->client.get();
  return Status::OK();
}

Status ClusterBackend::FetchMapFrom(net::RemoteBackend* client,
                                    std::shared_ptr<const ClusterMap>* out) {
  net::PayloadWriter req;
  Status transport;
  std::vector<uint8_t> body;
  size_t off = 0;
  MLKV_RETURN_NOT_OK(
      client->CallRaw(net::Opcode::kClusterMap, req, &transport, &body, &off));
  MLKV_RETURN_NOT_OK(transport);
  net::PayloadReader r(body.data() + off, body.size() - off);
  auto m = std::make_shared<ClusterMap>();
  MLKV_RETURN_NOT_OK(DecodeClusterMap(&r, m.get()));
  *out = std::move(m);
  return Status::OK();
}

BatchResult ClusterBackend::MultiGet(std::span<const Key> keys, float* out,
                                     const MultiGetOptions& options) {
  return Execute(Op::kGet, keys, out, nullptr, 0.0f, options,
                 /*allow_epoch_retry=*/true);
}

BatchResult ClusterBackend::MultiPut(std::span<const Key> keys,
                                     const float* values) {
  return Execute(Op::kPut, keys, nullptr, values, 0.0f, {},
                 /*allow_epoch_retry=*/true);
}

BatchResult ClusterBackend::MultiApplyGradient(std::span<const Key> keys,
                                               const float* grads, float lr) {
  return Execute(Op::kGrad, keys, nullptr, grads, lr, {},
                 /*allow_epoch_retry=*/true);
}

Status ClusterBackend::Lookahead(std::span<const Key> keys) {
  if (keys.empty()) return Status::OK();
  auto m = map();
  std::vector<std::vector<Key>> per(m->num_partitions());
  for (const Key k : keys) per[m->PartitionOf(k)].push_back(k);
  for (size_t p = 0; p < per.size(); ++p) {
    if (per[p].empty()) continue;
    Endpoint* ep = EndpointFor(m->endpoints[m->partitions[p].primary]);
    net::RemoteBackend* client = nullptr;
    if (!GetClient(ep, &client).ok()) continue;  // a hint: best-effort
    (void)client->Lookahead(per[p]);
  }
  return Status::OK();
}

BackendIoStats ClusterBackend::io_stats() const {
  BackendIoStats total;
  std::vector<Endpoint*> eps;
  {
    std::lock_guard<std::mutex> lock(ep_mu_);
    eps.reserve(endpoints_.size());
    for (const auto& e : endpoints_) eps.push_back(e.get());
  }
  for (Endpoint* ep : eps) {
    std::lock_guard<std::mutex> lock(ep->mu);
    if (!ep->client) continue;
    const BackendIoStats s = ep->client->io_stats();
    total.remote_requests += s.remote_requests;
    total.remote_retries += s.remote_retries;
  }
  return total;
}

void ClusterBackend::CollectMetrics(obs::MetricsSink* sink) const {
  KvBackend::CollectMetrics(sink);
  for (const EndpointStats& s : endpoint_stats()) {
    sink->AddCounter("mlkv_cluster_endpoint_requests_total",
                     "Sub-batches routed to this cluster endpoint.",
                     static_cast<double>(s.requests), {{"endpoint", s.addr}});
    sink->AddCounter("mlkv_cluster_endpoint_failovers_total",
                     "Sub-batches that left this endpoint for a fallback.",
                     static_cast<double>(s.failovers), {{"endpoint", s.addr}});
  }
  sink->AddGauge("mlkv_cluster_map_epoch",
                 "Epoch of the client's installed routing map.",
                 static_cast<double>(map()->epoch));
}

std::vector<EndpointStats> ClusterBackend::endpoint_stats() const {
  std::vector<Endpoint*> eps;
  {
    std::lock_guard<std::mutex> lock(ep_mu_);
    eps.reserve(endpoints_.size());
    for (const auto& e : endpoints_) eps.push_back(e.get());
  }
  std::vector<EndpointStats> out;
  out.reserve(eps.size());
  for (Endpoint* ep : eps) {
    EndpointStats s;
    s.addr = ep->addr;
    s.requests = ep->requests.load(std::memory_order_relaxed);
    s.failovers = ep->failovers.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(ep->mu);
      s.connected = ep->client != nullptr;
    }
    out.push_back(std::move(s));
  }
  return out;
}

BatchResult ClusterBackend::ExecutePartition(const ClusterMap& m, size_t p,
                                             Op op, std::span<const Key> keys,
                                             float* rows_out,
                                             const float* rows_in, float lr,
                                             const MultiGetOptions& options) {
  const ClusterPartition& part = m.partitions[p];
  // Candidate endpoints in attempt order. Writes only ever run on the
  // primary; reads fail over to replicas (or start there under kReplica).
  std::vector<uint32_t> candidates;
  if (op == Op::kGet && m.read_preference == ReadPreference::kReplica &&
      !part.replicas.empty()) {
    candidates = part.replicas;
    candidates.push_back(part.primary);
  } else {
    candidates.push_back(part.primary);
    if (op == Op::kGet) {
      candidates.insert(candidates.end(), part.replicas.begin(),
                        part.replicas.end());
    }
  }

  Status last = Status::IOError("cluster: no reachable endpoint for partition " +
                                std::to_string(p));
  BatchResult folded;  // transport failure folded to per-key codes
  bool have_folded = false;
  for (size_t c = 0; c < candidates.size(); ++c) {
    const uint32_t idx = candidates[c];
    Endpoint* ep = EndpointFor(m.endpoints[idx]);
    net::RemoteBackend* client = nullptr;
    const Status st = GetClient(ep, &client);
    if (!st.ok()) {
      last = st;
      if (c + 1 < candidates.size()) {
        ep->failovers.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    ep->requests.fetch_add(1, std::memory_order_relaxed);
    bool down = false;
    BatchResult r;
    switch (op) {
      case Op::kGet: {
        MultiGetOptions o = options;
        // A non-primary candidate serves the read consistency-free: a
        // replica has no staleness authority over the partition.
        if (idx != part.primary) o.untracked = true;
        r = client->MultiGetEx(keys, rows_out, o, &down);
        break;
      }
      case Op::kPut:
        r = client->MultiPutEx(keys, rows_in, &down);
        break;
      case Op::kGrad:
        r = client->MultiApplyGradientEx(keys, rows_in, lr, &down);
        break;
    }
    if (!down) return r;
    folded = std::move(r);
    have_folded = true;
    // Writes stop here: retrying a possibly-executed write on another
    // server risks double-applying; the per-key failure codes stand.
    if (op != Op::kGet) return folded;
    if (c + 1 < candidates.size()) {
      ep->failovers.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (have_folded) return folded;
  BatchResult fail(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) fail.Record(i, last);
  return fail;
}

BatchResult ClusterBackend::Execute(Op op, std::span<const Key> keys,
                                    float* rows_out, const float* rows_in,
                                    float lr, const MultiGetOptions& options,
                                    bool allow_epoch_retry) {
  const size_t n = keys.size();
  BatchResult full(n);
  if (n == 0) return full;
  const std::shared_ptr<const ClusterMap> m = map();
  const size_t d = dim_;
  const size_t nparts = m->num_partitions();

  std::vector<uint32_t> part(n);
  std::vector<size_t> counts(nparts, 0);
  for (size_t i = 0; i < n; ++i) {
    part[i] = static_cast<uint32_t>(m->PartitionOf(keys[i]));
    ++counts[part[i]];
  }
  size_t nonempty = 0, only = 0;
  for (size_t p = 0; p < nparts; ++p) {
    if (counts[p] != 0) {
      ++nonempty;
      only = p;
    }
  }

  if (nonempty == 1) {
    // Single-partition batch: the caller's spans are already contiguous.
    full = ExecutePartition(*m, only, op, keys, rows_out, rows_in, lr, options);
  } else {
    // Stable counting-sort scatter (same shape as ShardedStore's): caller
    // positions grouped by partition, in-order within each group so
    // duplicate-key semantics survive the hop.
    std::vector<size_t> offsets(nparts + 1, 0);
    for (size_t p = 0; p < nparts; ++p) offsets[p + 1] = offsets[p] + counts[p];
    std::vector<size_t> pos(offsets.begin(), offsets.end() - 1);
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[pos[part[i]]++] = i;

    struct SubTask {
      size_t partition;
      size_t begin;
      size_t end;
    };
    std::vector<SubTask> tasks;
    for (size_t p = 0; p < nparts; ++p) {
      if (counts[p] != 0) tasks.push_back({p, offsets[p], offsets[p + 1]});
    }
    std::vector<BatchResult> sub(tasks.size());

    std::atomic<size_t> next{0};
    auto worker = [&]() {
      for (;;) {
        const size_t t = next.fetch_add(1, std::memory_order_relaxed);
        if (t >= tasks.size()) return;
        const SubTask& task = tasks[t];
        const size_t cnt = task.end - task.begin;
        std::vector<Key> sub_keys(cnt);
        for (size_t j = 0; j < cnt; ++j) {
          sub_keys[j] = keys[order[task.begin + j]];
        }
        std::vector<float> sub_rows(cnt * d);
        if (op != Op::kGet) {
          for (size_t j = 0; j < cnt; ++j) {
            simd::CopyFloats(&sub_rows[j * d],
                             rows_in + order[task.begin + j] * d, d);
          }
        }
        sub[t] = ExecutePartition(
            *m, task.partition, op, sub_keys,
            op == Op::kGet ? sub_rows.data() : nullptr,
            op == Op::kGet ? nullptr : sub_rows.data(), lr, options);
        if (op == Op::kGet) {
          for (size_t j = 0; j < cnt; ++j) {
            if (sub[t].codes[j] == Status::Code::kOk) {
              simd::CopyFloats(rows_out + order[task.begin + j] * d,
                               &sub_rows[j * d], d);
            }
          }
        }
      }
    };

    // Helpers claim tasks off the shared counter; the calling thread
    // always participates, so a full pool queue can never deadlock a
    // batch. A local latch (not ThreadPool::Drain) keeps concurrent
    // batches from waiting on each other's tasks.
    struct Latch {
      std::mutex mu;
      std::condition_variable cv;
      size_t pending = 0;
    };
    auto latch = std::make_shared<Latch>();
    const size_t helpers =
        std::min(pool_->num_threads(), tasks.size() > 0 ? tasks.size() - 1 : 0);
    // Helpers inherit the caller's trace context so their ExecutePartition
    // rpc spans land in the same request tree (the caller thread already
    // has it installed).
    const obs::TraceContext trace_ctx = obs::CurrentTraceContext();
    for (size_t h = 0; h < helpers; ++h) {
      {
        std::lock_guard<std::mutex> lock(latch->mu);
        ++latch->pending;
      }
      const bool queued = pool_->TrySubmit([&worker, latch, trace_ctx]() {
        obs::ScopedTraceContext trace_scope(trace_ctx);
        worker();
        std::lock_guard<std::mutex> lock(latch->mu);
        --latch->pending;
        latch->cv.notify_all();
      });
      if (!queued) {
        std::lock_guard<std::mutex> lock(latch->mu);
        --latch->pending;
      }
    }
    worker();
    {
      std::unique_lock<std::mutex> lock(latch->mu);
      latch->cv.wait(lock, [&latch]() { return latch->pending == 0; });
    }

    // Gather: codes back to caller positions, counts accumulated.
    for (size_t t = 0; t < tasks.size(); ++t) {
      const SubTask& task = tasks[t];
      const BatchResult& s = sub[t];
      for (size_t j = 0; j < task.end - task.begin; ++j) {
        full.codes[order[task.begin + j]] = s.codes[j];
      }
      full.found += s.found;
      full.missing += s.missing;
      full.busy += s.busy;
      if (full.failed == 0 && s.failed > 0) full.first_error = s.first_error;
      full.failed += s.failed;
    }
  }

  // Stale-map recovery: per-key kWrongPartition means the server's map
  // moved on. Refetch; if the epoch actually changed, retry exactly the
  // rejected keys once under the new routing.
  if (!allow_epoch_retry) return full;
  bool any_stale = false;
  for (const Status::Code c : full.codes) {
    if (c == Status::Code::kWrongPartition) {
      any_stale = true;
      break;
    }
  }
  if (!any_stale) return full;
  const uint64_t old_epoch = m->epoch;
  if (!RefreshMap().ok()) return full;
  if (map()->epoch == old_epoch) return full;

  std::vector<size_t> stale;
  std::vector<Key> retry_keys;
  for (size_t i = 0; i < n; ++i) {
    if (full.codes[i] == Status::Code::kWrongPartition) {
      stale.push_back(i);
      retry_keys.push_back(keys[i]);
    }
  }
  std::vector<float> retry_rows(stale.size() * d);
  if (op != Op::kGet) {
    for (size_t j = 0; j < stale.size(); ++j) {
      simd::CopyFloats(&retry_rows[j * d], rows_in + stale[j] * d, d);
    }
  }
  const BatchResult again = Execute(
      op, retry_keys, op == Op::kGet ? retry_rows.data() : nullptr,
      op == Op::kGet ? nullptr : retry_rows.data(), lr, options,
      /*allow_epoch_retry=*/false);
  for (size_t j = 0; j < stale.size(); ++j) {
    full.codes[stale[j]] = again.codes[j];
    if (op == Op::kGet && again.codes[j] == Status::Code::kOk) {
      simd::CopyFloats(rows_out + stale[j] * d, &retry_rows[j * d], d);
    }
  }
  // The stale keys were all counted failed; swap in the retry's outcome.
  full.failed -= stale.size();
  full.found += again.found;
  full.missing += again.missing;
  full.busy += again.busy;
  full.failed += again.failed;
  if (full.failed == 0) {
    full.first_error = Status::OK();
  } else if (again.failed > 0) {
    full.first_error = again.first_error;
  } else if (full.first_error.IsWrongPartition()) {
    // Remaining failures predate the retry; surface one of their codes.
    for (const Status::Code c : full.codes) {
      if (IsHardCode(c)) {
        full.first_error = Status::FromCode(c);
        break;
      }
    }
  }
  return full;
}

}  // namespace cluster
}  // namespace mlkv
