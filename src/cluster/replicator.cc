#include "cluster/replicator.h"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "net/wire.h"

namespace mlkv {
namespace cluster {

Replicator::Replicator(KvBackend* local, ReplicatorOptions options)
    : local_(local), options_(std::move(options)) {}

Replicator::~Replicator() { Stop(); }

Status Replicator::Start() {
  if (options_.primary_addr.empty()) {
    return Status::InvalidArgument("replicator: primary_addr is empty");
  }
  if (started_) return Status::InvalidArgument("replicator already started");
  (void)LoadState();  // best-effort: a bad file just replays the log
  started_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  thread_ = std::thread(&Replicator::Loop, this);
  return Status::OK();
}

void Replicator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

ReplicationProgress Replicator::progress() const {
  ReplicationProgress p;
  p.replicated_records = replicated_.load(std::memory_order_relaxed);
  p.replica_lag_records = lag_.load(std::memory_order_relaxed);
  p.polls = polls_.load(std::memory_order_relaxed);
  p.reconnects = reconnects_.load(std::memory_order_relaxed);
  p.apply_failures = apply_failures_.load(std::memory_order_relaxed);
  p.connected = connected_.load(std::memory_order_acquire);
  p.caught_up = caught_up_.load(std::memory_order_acquire);
  return p;
}

bool Replicator::WaitCaughtUp(uint64_t timeout_ms) {
  // caught_up_ is a level, not an edge: it may still be true from a round
  // that predates writes the caller just made. Requiring two more completed
  // rounds guarantees one that *started* after this call — so "caught up"
  // means caught up with everything written before the wait began.
  const uint64_t target = polls_.load(std::memory_order_relaxed) + 2;
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&]() {
    return caught_up_.load(std::memory_order_acquire) &&
           polls_.load(std::memory_order_relaxed) >= target;
  });
}

void Replicator::Loop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
    Status st = EnsureClient();
    bool shipped = false;
    if (st.ok()) {
      st = PollRound(&shipped);
      if (st.ok()) {
        polls_.fetch_add(1, std::memory_order_relaxed);
        SaveState();
        cv_.notify_all();  // caught_up_ may have flipped
        // A full poll still drained entries: the primary is ahead, keep
        // pulling without the idle sleep.
        if (shipped) continue;
      }
    }
    if (!st.ok()) {
      // Transport loss or a server-side refusal: drop the connection and
      // retry from the persisted tokens after the idle interval.
      if (client_) {
        client_.reset();
        connected_.store(false, std::memory_order_release);
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_interval_ms),
                 [this]() { return stop_; });
    if (stop_) return;
  }
}

Status Replicator::EnsureClient() {
  if (client_) return Status::OK();
  net::RemoteBackendOptions ro;
  ro.addr = options_.primary_addr;
  ro.pool_size = 1;  // one stream: the feed is polled strictly in order
  std::unique_ptr<net::RemoteBackend> c;
  MLKV_RETURN_NOT_OK(net::RemoteBackend::Connect(ro, &c));

  // Learn the primary's feed topology; size the resume tokens to it.
  net::PayloadWriter req;
  Status transport;
  std::vector<uint8_t> body;
  size_t off = 0;
  MLKV_RETURN_NOT_OK(
      c->CallRaw(net::Opcode::kSubscribe, req, &transport, &body, &off));
  MLKV_RETURN_NOT_OK(transport);
  net::PayloadReader r(body.data() + off, body.size() - off);
  net::SubscribeResponse sub;
  MLKV_RETURN_NOT_OK(DecodeSubscribeResponse(&r, &sub));
  if (sub.shard_durables.empty()) {
    return Status::NotSupported("primary reports no replication shards");
  }
  if (positions_.size() != sub.shard_durables.size()) {
    // Topology changed under our persisted tokens (or first start): the
    // addresses are per-shard, so a different shard count resets them.
    positions_.assign(sub.shard_durables.size(), 0);
  }

  client_ = std::move(c);
  if (ever_connected_) reconnects_.fetch_add(1, std::memory_order_relaxed);
  ever_connected_ = true;
  connected_.store(true, std::memory_order_release);
  return Status::OK();
}

Status Replicator::PollRound(bool* shipped) {
  *shipped = false;
  bool all_caught = true;
  for (uint32_t sh = 0; sh < positions_.size(); ++sh) {
    net::ReplicateRequest req;
    req.shard = sh;
    req.from = positions_[sh];
    req.max_records = options_.max_records_per_poll;
    req.max_bytes = options_.max_bytes_per_poll;
    net::PayloadWriter w;
    EncodeReplicateRequest(req, &w);
    Status transport;
    std::vector<uint8_t> body;
    size_t off = 0;
    MLKV_RETURN_NOT_OK(
        client_->CallRaw(net::Opcode::kReplicate, w, &transport, &body, &off));
    MLKV_RETURN_NOT_OK(transport);
    net::PayloadReader r(body.data() + off, body.size() - off);
    net::ReplicateResponse resp;
    MLKV_RETURN_NOT_OK(DecodeReplicateResponse(&r, &resp));

    const size_t n = resp.entries.size();
    if (n != 0) {
      *shipped = true;
      lag_.fetch_add(n, std::memory_order_relaxed);
      bool stalled = false;
      for (size_t i = 0; i < n; ++i) {
        const UpdateEntry& e = resp.entries[i];
        const Status st = local_->ApplyReplicatedUpdate(e);
        if (!st.ok()) {
          // Hold the token at the failed entry; next round refetches from
          // here, so log order is never violated by a skipped record.
          apply_failures_.fetch_add(1, std::memory_order_relaxed);
          lag_.fetch_sub(n - i, std::memory_order_relaxed);
          stalled = true;
          break;
        }
        replicated_.fetch_add(1, std::memory_order_relaxed);
        lag_.fetch_sub(1, std::memory_order_relaxed);
        positions_[sh] = i + 1 < n ? resp.entries[i + 1].address
                                   : resp.next_from;
      }
      if (stalled) {
        all_caught = false;
        continue;
      }
    }
    // Adopt the server cursor's resume point even when no records came
    // back: the cursor skips trailing gap fill (page padding, retracted
    // records), so an empty response can still move the token up to the
    // durable watermark — holding the old one would read as permanent lag.
    positions_[sh] = resp.next_from;
    if (positions_[sh] < resp.durable || n != 0) all_caught = false;
  }
  caught_up_.store(all_caught, std::memory_order_release);
  return Status::OK();
}

Status Replicator::LoadState() {
  if (options_.state_path.empty()) return Status::OK();
  std::ifstream in(options_.state_path);
  if (!in) return Status::NotFound("no replica state file");
  std::string magic, addr;
  size_t n = 0;
  if (!std::getline(in, magic) || magic != "mlkv-replica-state v1") {
    return Status::Corruption("replica state: bad header");
  }
  if (!std::getline(in, addr) || addr != options_.primary_addr) {
    return Status::Corruption("replica state: different primary");
  }
  if (!(in >> n) || n == 0 || n > 4096) {
    return Status::Corruption("replica state: bad shard count");
  }
  std::vector<uint64_t> pos(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (!(in >> pos[i])) return Status::Corruption("replica state: truncated");
  }
  positions_ = std::move(pos);
  return Status::OK();
}

void Replicator::SaveState() {
  if (options_.state_path.empty() || positions_.empty()) return;
  const std::string tmp = options_.state_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;  // best-effort: a restart just replays the log
    out << "mlkv-replica-state v1\n" << options_.primary_addr << "\n"
        << positions_.size() << "\n";
    for (const uint64_t p : positions_) out << p << "\n";
  }
  std::rename(tmp.c_str(), options_.state_path.c_str());
}

}  // namespace cluster
}  // namespace mlkv
