// Quickstart: the MLKV public API in one file (mirrors paper Fig. 3).
//
//   build/examples/quickstart
//
// Opens an MLKV instance, creates an embedding table with a staleness
// bound, runs the Get -> train -> Put loop by hand, uses Lookahead to
// prefetch the next batch, and checkpoints.
#include <cstdio>
#include <vector>

#include "io/temp_dir.h"
#include "mlkv/mlkv.h"

using namespace mlkv;

int main() {
  TempDir workdir("mlkv-quickstart");

  // 1. Open MLKV and an embedding model: dimension 16, staleness bound 4
  //    (SSP; 0 would be BSP, Mlkv::kAspBound fully asynchronous).
  MlkvOptions options;
  options.dir = workdir.File("db");
  options.mem_size = 16ull << 20;
  std::unique_ptr<Mlkv> db;
  Status s = Mlkv::Open(options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  EmbeddingTable* table = nullptr;
  s = db->OpenTable("user_embeddings", /*dim=*/16, /*staleness_bound=*/4,
                    &table);
  if (!s.ok()) {
    std::fprintf(stderr, "table failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("opened table '%s' dim=%u bound=%u\n",
              table->model_id().c_str(), table->dim(),
              table->staleness_bound());

  // 2. The training loop of paper Fig. 3: Get embeddings for this batch's
  //    sparse features, compute, Put the updated values back.
  std::vector<Key> batch = {101, 202, 303, 404};
  std::vector<float> values(batch.size() * 16);
  if (!table->GetOrInit(batch, values.data()).ok()) return 1;
  std::printf("fetched %zu embeddings; emb[0][0..3] = %.3f %.3f %.3f %.3f\n",
              batch.size(), values[0], values[1], values[2], values[3]);

  // "Train": pretend the gradient is 0.01 everywhere; apply SGD client-side
  // as the paper's line 17 does (Put(keys, values + opt(gradients))).
  for (float& v : values) v -= 0.05f * 0.01f;
  if (!table->Put(batch, values.data()).ok()) return 1;

  // Or let the store apply gradients atomically (Rmw under the hood):
  std::vector<float> grads(batch.size() * 16, 0.01f);
  if (!table->ApplyGradients(batch, grads.data(), /*lr=*/0.05f).ok()) return 1;

  // 3. Look-ahead prefetching: we know the next batch already, so start
  //    moving its embeddings from disk into MLKV's mutable buffer now.
  std::vector<Key> next_batch = {505, 606, 707, 808};
  table->GetOrInit(next_batch, values.data()).ok();  // make them exist
  table->Lookahead(next_batch);
  table->WaitLookahead();

  // 4. Inspect storage statistics and checkpoint.
  const FasterStatsSnapshot stats = table->store()->stats();
  std::printf("reads=%llu upserts=%llu in-place=%llu rcu=%llu "
              "promoted=%llu promote-skipped=%llu\n",
              (unsigned long long)stats.reads,
              (unsigned long long)stats.upserts,
              (unsigned long long)stats.inplace_updates,
              (unsigned long long)stats.rcu_appends,
              (unsigned long long)stats.promotions,
              (unsigned long long)stats.promotions_skipped);
  if (!db->CheckpointAll().ok()) return 1;
  std::printf("checkpointed to %s\n", options.dir.c_str());
  std::printf("quickstart OK\n");
  return 0;
}
