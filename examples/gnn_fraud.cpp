// Transaction-risk GNN (the eBay-Trisk case study, paper §IV-F): GraphSage
// over a bipartite transaction/entity graph, binary risk labels, AUC over
// time, with look-ahead prefetching hiding entity-embedding disk reads.
//
//   build/examples/gnn_fraud [--batches=400] [--buffer_mb=4]
#include <cstdio>
#include <cstring>
#include <memory>

#include "backend/kv_backend.h"
#include "io/temp_dir.h"
#include "train/gnn_trainer.h"

using namespace mlkv;

int main(int argc, char** argv) {
  uint64_t batches = 400;
  uint64_t buffer_mb = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--batches=", 10) == 0) {
      batches = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--buffer_mb=", 12) == 0) {
      buffer_mb = std::strtoull(argv[i] + 12, nullptr, 10);
    }
  }

  TempDir workdir("mlkv-fraud");
  BackendConfig cfg;
  cfg.dir = workdir.File("db");
  cfg.dim = 32;
  cfg.buffer_bytes = buffer_mb << 20;
  cfg.staleness_bound = 16;
  std::unique_ptr<KvBackend> backend;
  if (!MakeBackend(BackendKind::kMlkv, cfg, &backend).ok()) return 1;

  GnnTrainerOptions o;
  o.task = GnnTask::kEbayTrisk;
  o.ebay.num_transactions = 100000;
  o.ebay.num_entities = 40000;
  o.dim = 32;
  o.hidden = 32;
  o.batch_size = 64;
  o.num_workers = 2;
  o.train_batches = batches;
  o.eval_every = static_cast<int>(batches / 8);
  o.eval_nodes = 800;
  o.embedding_lr = 0.1f;
  o.lookahead_depth = 6;

  std::printf("training GraphSage risk model on bipartite graph "
              "(%llu transactions, %llu entities, %llu MiB buffer)...\n",
              (unsigned long long)o.ebay.num_transactions,
              (unsigned long long)o.ebay.num_entities,
              (unsigned long long)buffer_mb);
  GnnTrainer trainer(backend.get(), o);
  const TrainResult r = trainer.Train();

  std::printf("\n%-10s %-10s\n", "seconds", "AUC");
  for (const auto& [sec, auc] : r.metric_curve) {
    std::printf("%-10.1f %-10.4f\n", sec, auc);
  }
  std::printf("\nthroughput: %.0f transactions/s, final risk AUC %.3f\n",
              r.throughput(), r.final_metric);
  return 0;
}
