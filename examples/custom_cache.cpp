// Custom caching with Lookahead (paper §III-C2): "users can also use
// look-ahead prefetching to manipulate cache admissions for customized
// caching strategies."
//
//   build/examples/custom_cache
//
// A training loop that knows its future batches (the common case: the
// dataloader owns the sample order) drives both Lookahead destinations:
//
//   * hot keys (frequency above a threshold)  -> application cache, where
//     hits are pure memory lookups that skip the store entirely;
//   * everything else in the upcoming batches -> the store's own mutable
//     buffer, where bounded-staleness Gets then hit memory instead of disk.
//
// The run compares cold Gets vs the same access sequence with the split
// prefetch policy, printing cache hit rates and store disk reads.
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "io/temp_dir.h"
#include "mlkv/mlkv.h"

using namespace mlkv;

namespace {

constexpr uint32_t kDim = 32;
constexpr Key kNumRows = 60000;
constexpr size_t kBatch = 256;
constexpr int kBatches = 200;
constexpr int kLookaheadDepth = 4;  // batches of future knowledge

std::vector<std::vector<Key>> MakeBatches(uint64_t seed) {
  ZipfianGenerator zipf(kNumRows, 0.9, seed);
  std::vector<std::vector<Key>> batches(kBatches);
  std::unordered_map<Key, int> in_batch;
  for (auto& batch : batches) {
    // Deduplicate within a batch, as embedding trainers do: one Get and one
    // gradient Put per unique key. (Repeats would also burn the staleness
    // budget: Gets raise a record's clock, and only its Put lowers it.)
    in_batch.clear();
    while (batch.size() < kBatch) {
      const Key k = zipf.NextScrambled();
      if (in_batch.emplace(k, 1).second) batch.push_back(k);
    }
  }
  return batches;
}

struct RunResult {
  uint64_t disk_reads = 0;
  uint64_t cache_hits = 0;
  uint64_t gets = 0;
  double seconds = 0;
};

}  // namespace

int main() {
  TempDir workdir("mlkv-cache");
  MlkvOptions options;
  options.dir = workdir.File("db");
  options.mem_size = 8ull << 20;  // deliberately smaller than the table
  options.lookahead_threads = 2;
  std::unique_ptr<Mlkv> db;
  if (!Mlkv::Open(options, &db).ok()) return 1;
  EmbeddingTable* table = nullptr;
  if (!db->OpenTable("emb", kDim, /*staleness_bound=*/16, &table).ok()) {
    return 1;
  }

  // Materialize the table (larger than the in-memory buffer).
  {
    std::vector<float> v(kDim, 0.25f);
    for (Key k = 0; k < kNumRows; ++k) {
      v[0] = static_cast<float>(k);
      if (!table->Put({&k, 1}, v.data()).ok()) return 1;
    }
  }
  std::printf("table: %llu rows x dim %u (memory buffer %llu MiB)\n",
              static_cast<unsigned long long>(kNumRows), kDim,
              static_cast<unsigned long long>(options.mem_size >> 20));

  const auto batches = MakeBatches(1234);

  // Frequency sketch over the visible future — the "application logic" that
  // decides cache admission. Keys seen in >= 3 future batches are hot.
  auto hot_set = [&batches](int from, int to) {
    std::unordered_map<Key, int> freq;
    for (int b = from; b < to && b < kBatches; ++b) {
      for (const Key k : batches[b]) ++freq[k];
    }
    std::vector<Key> hot;
    for (const auto& [k, n] : freq) {
      if (n >= 3) hot.push_back(k);
    }
    return hot;
  };

  auto run = [&](bool prefetch, RunResult* out) -> Status {
    EmbeddingCache cache(/*capacity=*/4096, kDim);
    std::vector<float> buf(kBatch * kDim);
    table->store()->ResetStats();
    const auto before = table->store()->stats();
    for (int b = 0; b < kBatches; ++b) {
      if (prefetch && b + 1 < kBatches) {
        // Admit frequent future keys to the application cache...
        const auto hot = hot_set(b + 1, b + 1 + kLookaheadDepth);
        MLKV_RETURN_NOT_OK(table->Lookahead(
            hot, EmbeddingTable::LookaheadDest::kApplicationCache, &cache));
        // ...and stage the whole next batch in the store's buffer.
        MLKV_RETURN_NOT_OK(table->Lookahead(
            batches[b + 1], EmbeddingTable::LookaheadDest::kStorageBuffer));
      }
      for (size_t i = 0; i < batches[b].size(); ++i) {
        const Key k = batches[b][i];
        float* dst = buf.data() + i * kDim;
        if (cache.Get(k, dst)) {
          ++out->cache_hits;
          continue;
        }
        MLKV_RETURN_NOT_OK(table->Get({&k, 1}, dst));
      }
      out->gets += batches[b].size();
      // "Train": nudge the batch and write it back. The Put half matters
      // for more than realism — every Get raised its record's staleness
      // clock, and only a Put lowers it again (paper §III-C1).
      for (size_t i = 0; i < batches[b].size(); ++i) {
        float* v = buf.data() + i * kDim;
        v[1] += 1e-3f;
        MLKV_RETURN_NOT_OK(table->Put({&batches[b][i], 1}, v));
        cache.Erase(batches[b][i]);
      }
    }
    table->WaitLookahead();
    const auto after = table->store()->stats();
    out->disk_reads = after.disk_record_reads - before.disk_record_reads;
    return Status::OK();
  };

  RunResult cold, warmed;
  if (!run(false, &cold).ok()) return 1;
  if (!run(true, &warmed).ok()) return 1;

  std::printf("\n%-28s %12s %12s\n", "", "no-prefetch", "lookahead");
  std::printf("%-28s %12llu %12llu\n", "store disk record reads",
              static_cast<unsigned long long>(cold.disk_reads),
              static_cast<unsigned long long>(warmed.disk_reads));
  std::printf("%-28s %12llu %12llu\n", "application cache hits",
              static_cast<unsigned long long>(cold.cache_hits),
              static_cast<unsigned long long>(warmed.cache_hits));
  std::printf("%-28s %12llu %12llu\n", "embedding gets",
              static_cast<unsigned long long>(cold.gets),
              static_cast<unsigned long long>(warmed.gets));
  const bool improved = warmed.disk_reads < cold.disk_reads &&
                        warmed.cache_hits > 0;
  std::printf("\nlookahead cut disk reads by %.1f%% and served %.1f%% of "
              "gets from the application cache -> %s\n",
              cold.disk_reads > 0
                  ? 100.0 * (1.0 - static_cast<double>(warmed.disk_reads) /
                                       cold.disk_reads)
                  : 0.0,
              100.0 * static_cast<double>(warmed.cache_hits) / warmed.gets,
              improved ? "OK" : "UNEXPECTED");
  return improved ? 0 : 1;
}
