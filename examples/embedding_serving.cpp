// Train -> checkpoint -> serve: the full lifecycle of an embedding model on
// MLKV (the inference half mirrors HugeCTR's out-of-core parameter server,
// which the paper cites as a motivating integration).
//
//   build/examples/embedding_serving
//
// Phase 1 trains a small CTR-style embedding table and checkpoints it.
// Phase 2 simulates a serving replica: a fresh Mlkv instance recovers the
// directory, warms the head of the popularity distribution into the
// serving cache, and answers zipfian batched lookups, printing hit rates
// and tail latency.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/random.h"
#include "io/temp_dir.h"
#include "mlkv/mlkv.h"
#include "serve/embedding_server.h"

using namespace mlkv;

namespace {
constexpr uint32_t kDim = 16;
constexpr Key kRows = 100000;
}  // namespace

int main() {
  TempDir workdir("mlkv-serving");
  MlkvOptions options;
  options.dir = workdir.File("db");
  options.mem_size = 8ull << 20;

  // ---- Phase 1: "train" and checkpoint. ----
  {
    std::unique_ptr<Mlkv> db;
    if (!Mlkv::Open(options, &db).ok()) return 1;
    EmbeddingTable* table = nullptr;
    OptimizerConfig adagrad;
    adagrad.kind = OptimizerKind::kAdagrad;
    if (!db->OpenTable("ctr_emb", kDim, 8, &table, adagrad).ok()) return 1;
    std::vector<float> v(kDim), g(kDim, 0.05f);
    for (Key k = 0; k < kRows; ++k) {
      if (!table->GetOrInit({&k, 1}, v.data()).ok()) return 1;
    }
    // A few gradient passes over a popular subset (what training skew does).
    ZipfianGenerator zipf(kRows, 0.99, 7);
    for (int i = 0; i < 50000; ++i) {
      const Key k = zipf.NextScrambled();
      if (!table->Get({&k, 1}, v.data()).ok()) return 1;
      if (!table->ApplyGradients({&k, 1}, g.data()).ok()) return 1;
    }
    if (!db->CheckpointAll().ok()) return 1;
    std::printf("phase1: trained %llu rows, checkpointed\n",
                static_cast<unsigned long long>(table->num_embeddings()));
  }

  // ---- Phase 2: serving replica recovers and answers lookups. ----
  std::unique_ptr<Mlkv> db;
  if (!Mlkv::Open(options, &db).ok()) return 1;
  EmbeddingTable* table = nullptr;
  if (!db->OpenExistingTable("ctr_emb", &table).ok()) return 1;

  ServeOptions so;
  so.cache_capacity = 1 << 14;
  EmbeddingServer server(table, so);

  // Deploy-time warmup: the head of the id distribution is known.
  std::vector<Key> head(1 << 13);
  for (size_t i = 0; i < head.size(); ++i) head[i] = i;
  if (!server.Warm(head).ok()) return 1;
  std::printf("phase2: recovered table, warmed %zu hot rows\n", head.size());

  // Serve zipfian traffic.
  ZipfianGenerator zipf(kRows, 0.99, 99);
  std::vector<Key> batch(256);
  std::vector<float> out(batch.size() * kDim);
  for (int b = 0; b < 500; ++b) {
    for (auto& k : batch) k = zipf.NextScrambled();
    if (!server.Lookup(batch, out.data()).ok()) return 1;
  }
  const auto st = server.stats();
  std::printf("served %llu lookups in %llu batches\n",
              static_cast<unsigned long long>(st.lookups),
              static_cast<unsigned long long>(st.batches));
  std::printf("cache hits %.1f%%  store hits %.1f%%  missing %llu\n",
              100.0 * st.cache_hits / static_cast<double>(st.lookups),
              100.0 * st.store_hits / static_cast<double>(st.lookups),
              static_cast<unsigned long long>(st.missing));
  std::printf("batch latency p50 %llu us  p95 %llu us  p99 %llu us\n",
              static_cast<unsigned long long>(st.batch_p50_us),
              static_cast<unsigned long long>(st.batch_p95_us),
              static_cast<unsigned long long>(st.batch_p99_us));
  return st.missing == 0 && st.cache_hits > 0 ? 0 : 1;
}
