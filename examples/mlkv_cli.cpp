// mlkv_cli: command-line inspection and maintenance for an MLKV directory.
//
//   mlkv_cli <dir> tables
//   mlkv_cli <dir> create <table> <dim> <staleness_bound> [sgd|momentum|adagrad|adam]
//   mlkv_cli <dir> stats <table>
//   mlkv_cli <dir> get <table> <key>
//   mlkv_cli <dir> put <table> <key> <v0,v1,...>
//   mlkv_cli <dir> del <table> <key>
//   mlkv_cli <dir> scan <table> [limit]
//   mlkv_cli <dir> tail <table> [--shard N] [--from ADDR] [--limit N]
//   mlkv_cli <dir> compact <table>
//   mlkv_cli <dir> export <table> <path>
//   mlkv_cli <dir> import <table> <path>
//   mlkv_cli <dir> checkpoint
//
// Network mode (src/net/): serve any backend over TCP, and poke a running
// server by hand — the end-to-end drivable surface of the RPC subsystem.
//
//   mlkv_cli <dir> serve --addr <host:port> --backend <kind>
//                        [--dim N] [--workers N] [--staleness N]
//                        [--cluster_addrs a,b] [--cluster_replicas r,""]
//                        [--cluster_self <addr>] [--replica_of <addr>]
//   mlkv_cli - remote-get --addr <host:port> <key>
//   mlkv_cli - remote-put --addr <host:port> <key> <v0,v1,...>
//   mlkv_cli - cluster-status --addr <host:port>
//
// Demonstrates the operational surface of the library: the manifest
// (OpenExistingTable), log scans, GC, export/import, checkpoints, and the
// embedding server.
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend/kv_backend.h"
#include "cluster/cluster_map.h"
#include "common/simd.h"
#include "cluster/replicator.h"
#include "kv/log_iterator.h"
#include "kv/update_log.h"
#include "mlkv/mlkv.h"
#include "net/kv_server.h"
#include "net/remote_backend.h"
#include "net/socket.h"
#include "obs/metrics_http.h"

using namespace mlkv;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: mlkv_cli <dir> <command> [args]\n"
      "  tables                              list tables in the manifest\n"
      "  create <t> <dim> <bound> [opt]      create a table\n"
      "  stats <t>                           store statistics\n"
      "  get <t> <key>                       print one embedding\n"
      "  put <t> <key> <v0,v1,...>           write one embedding\n"
      "  del <t> <key>                       delete one embedding\n"
      "  scan <t> [limit]                    list live keys (log order)\n"
      "  tail <t> [--shard N] [--from ADDR] [--limit N]\n"
      "       stream one shard's committed updates (docs/DURABILITY.md);\n"
      "       prints a resume address for the next invocation\n"
      "  compact <t>                         garbage-collect the log\n"
      "  export <t> <path> | import <t> <path>\n"
      "  checkpoint                          checkpoint every open table\n"
      "  serve --addr <h:p> --backend <kind> serve <dir> over TCP\n"
      "        [--dim N] [--workers N] [--staleness N]\n"
      "        [--io_mode sync|async] [--io_threads N]\n"
      "        [--durability_mode sync|group] [--checkpoint_mode full|incremental]\n"
      "        [--group_commit_window_us N] [--group_commit_max_bytes N]\n"
      "        [--request_threads N]  offload storage phases off workers\n"
      "        [--metrics_addr h:p]   Prometheus /metrics endpoint\n"
      "        [--serve_cache N]      front the backend with an N-vector cache\n"
      "        [--cache_admission lru|tinylfu]  eviction admission policy\n"
      "                               (tinylfu: frequency-sketch-gated, keeps\n"
      "                               hot keys under zipfian churn)\n"
      "        [--slow_request_us N]  slow-request log threshold (0 = auto)\n"
      "        kinds: mlkv faster lsm btree inmemory\n"
      "    cluster mode (docs/CLUSTER.md; --addr needs an explicit port):\n"
      "        [--cluster_addrs a,b,...]   primary endpoints, partition order\n"
      "        [--cluster_replicas r,...]  aligned with primaries, \"\" = none\n"
      "        [--cluster_self <addr>]     this server (default: --addr)\n"
      "        [--route_bits N] [--cluster_epoch N]\n"
      "        [--read_preference primary|replica]\n"
      "        [--replica_of <h:p>]        tail that primary's update feed\n"
      "        [--replica_poll_ms N] [--replica_state <path>]\n"
      "  remote-get --addr <h:p> <key>       read from a running server\n"
      "  remote-put --addr <h:p> <key> <csv> write to a running server\n"
      "  stats --addr <h:p> [--watch N] [--metrics_addr h:p]\n"
      "       counters of a running server (--watch repeats every N s;\n"
      "       --metrics_addr also dumps its Prometheus exposition)\n"
      "  cluster-status --addr <h:p>         map + per-endpoint health\n"
      "  (remote-*/stats/cluster-status ignore <dir>; pass '-')\n");
  return 2;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

// The store's durability unit is the checkpoint (paper §II-B), and every
// CLI invocation is its own process — so mutating commands checkpoint
// before exiting or their effect would vanish with the process.
int CommitAndExit(Mlkv* db, int rc) {
  if (rc == 0) {
    const Status s = db->CheckpointAll();
    if (!s.ok()) return Fail(s);
  }
  return rc;
}

std::vector<float> ParseFloats(const std::string& csv) {
  std::vector<float> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    out.push_back(std::strtof(csv.substr(pos, next - pos).c_str(), nullptr));
    pos = next + 1;
  }
  return out;
}

void PrintVector(const float* v, uint32_t dim) {
  std::printf("[");
  for (uint32_t d = 0; d < dim; ++d) {
    std::printf("%s%.4f", d ? ", " : "", v[d]);
  }
  std::printf("]\n");
}

// --flag value pairs and positional arguments after the command word.
struct ArgList {
  std::vector<std::string> positional;
  std::string Flag(const std::string& name, const std::string& def = "") {
    const auto it = flags.find(name);
    return it == flags.end() ? def : it->second;
  }
  bool ParseFrom(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        if (i + 1 >= argc) return false;  // every flag takes a value
        flags[arg.substr(2)] = argv[++i];
      } else {
        positional.push_back(arg);
      }
    }
    return true;
  }
  std::map<std::string, std::string> flags;
};

bool ParseBackendKind(const std::string& name, BackendKind* out) {
  if (name == "mlkv") *out = BackendKind::kMlkv;
  else if (name == "faster") *out = BackendKind::kFaster;
  else if (name == "lsm") *out = BackendKind::kLsm;
  else if (name == "btree") *out = BackendKind::kBtree;
  else if (name == "inmemory") *out = BackendKind::kInMemory;
  else return false;
  return true;
}

std::sig_atomic_t volatile g_stop_requested = 0;
void HandleStopSignal(int) { g_stop_requested = 1; }

// Comma-split that keeps empty entries — unlike ParseEndpointList, because
// "" in --cluster_replicas means "this primary has no replica".
std::vector<std::string> SplitKeepEmpty(const std::string& csv) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    std::string item = csv.substr(pos, next - pos);
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.front()))) {
      item.erase(item.begin());
    }
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.back()))) {
      item.pop_back();
    }
    out.push_back(std::move(item));
    pos = next + 1;
  }
  if (csv.empty()) out.clear();
  return out;
}

int RunServe(const std::string& dir, ArgList& args) {
  const std::string addr = args.Flag("addr", "127.0.0.1:0");
  BackendKind kind = BackendKind::kMlkv;
  if (!ParseBackendKind(args.Flag("backend", "mlkv"), &kind)) return Usage();

  std::string host;
  uint16_t port = 0;
  Status s = net::ParseHostPort(addr, &host, &port, /*allow_port_zero=*/true);
  if (!s.ok()) return Fail(s);

  BackendConfig cfg;
  cfg.dir = dir;
  cfg.dim = static_cast<uint32_t>(
      std::strtoul(args.Flag("dim", "16").c_str(), nullptr, 10));
  cfg.staleness_bound = static_cast<uint32_t>(std::strtoul(
      args.Flag("staleness", std::to_string(UINT32_MAX - 1)).c_str(), nullptr,
      10));
  if (!ParseIoMode(args.Flag("io_mode", "sync"), &cfg.io_mode)) {
    return Usage();
  }
  cfg.io_threads = static_cast<size_t>(
      std::strtoul(args.Flag("io_threads", "4").c_str(), nullptr, 10));
  if (!ParseDurabilityMode(args.Flag("durability_mode", "sync"),
                           &cfg.durability_mode)) {
    return Usage();
  }
  if (!ParseCheckpointMode(args.Flag("checkpoint_mode", "full"),
                           &cfg.checkpoint_mode)) {
    return Usage();
  }
  cfg.group_commit_window_us = std::strtoull(
      args.Flag("group_commit_window_us", "200").c_str(), nullptr, 10);
  cfg.group_commit_max_bytes = std::strtoull(
      args.Flag("group_commit_max_bytes", "1048576").c_str(), nullptr, 10);
  std::unique_ptr<KvBackend> backend;
  s = MakeBackend(kind, cfg, &backend);
  if (!s.ok()) return Fail(s);

  // Optional serving-side cache in front of whatever engine was picked.
  const size_t serve_cache = static_cast<size_t>(
      std::strtoul(args.Flag("serve_cache", "0").c_str(), nullptr, 10));
  if (serve_cache > 0) {
    CacheAdmission admission = CacheAdmission::kLru;
    const std::string admission_name = args.Flag("cache_admission", "lru");
    if (admission_name == "tinylfu") {
      admission = CacheAdmission::kTinyLfu;
    } else if (admission_name != "lru") {
      return Usage();
    }
    s = MakeCachingBackend(std::move(backend), serve_cache, admission,
                           &backend);
    if (!s.ok()) return Fail(s);
  }

  net::KvServerOptions so;
  so.host = host;
  so.port = port;
  so.num_workers = static_cast<size_t>(
      std::strtoul(args.Flag("workers", "4").c_str(), nullptr, 10));
  so.request_threads = static_cast<size_t>(
      std::strtoul(args.Flag("request_threads", "0").c_str(), nullptr, 10));
  so.slow_request_us = std::strtoull(
      args.Flag("slow_request_us", "0").c_str(), nullptr, 10);
  net::KvServer server(std::move(backend), so);
  s = server.Start();
  if (!s.ok()) return Fail(s);

  // Prometheus endpoint over the server's registry (per-server, so the
  // scrape covers exactly this serving process).
  obs::MetricsHttpServer metrics_http(server.metrics());
  const std::string metrics_addr = args.Flag("metrics_addr");
  if (!metrics_addr.empty()) {
    s = metrics_http.Start(metrics_addr);
    if (!s.ok()) {
      server.Stop();
      return Fail(s);
    }
    std::printf("metrics on http://%s/metrics\n", metrics_addr.c_str());
  }

  // Cluster mode: install the map so this server enforces ownership and
  // serves it to clients via kClusterMap.
  const std::string cluster_addrs = args.Flag("cluster_addrs");
  if (!cluster_addrs.empty()) {
    if (port == 0) {
      server.Stop();
      return Fail(Status::InvalidArgument(
          "cluster mode needs an explicit --addr port: the map must name "
          "this server's endpoint"));
    }
    std::vector<std::string> primaries;
    s = net::ParseEndpointList(cluster_addrs, &primaries);
    if (!s.ok()) {
      server.Stop();
      return Fail(s);
    }
    const std::vector<std::string> replicas =
        SplitKeepEmpty(args.Flag("cluster_replicas"));
    cluster::ReadPreference pref = cluster::ReadPreference::kPrimary;
    const std::string pref_name = args.Flag("read_preference", "primary");
    if (pref_name == "replica") {
      pref = cluster::ReadPreference::kReplica;
    } else if (pref_name != "primary") {
      server.Stop();
      return Usage();
    }
    auto map = std::make_shared<cluster::ClusterMap>();
    s = cluster::BuildClusterMap(
        primaries, replicas,
        static_cast<uint32_t>(
            std::strtoul(args.Flag("route_bits", "0").c_str(), nullptr, 10)),
        pref,
        std::strtoull(args.Flag("cluster_epoch", "1").c_str(), nullptr, 10),
        map.get());
    if (!s.ok()) {
      server.Stop();
      return Fail(s);
    }
    const std::string self_addr = args.Flag("cluster_self", server.addr());
    const int self = map->FindEndpoint(self_addr);
    if (self < 0) {
      server.Stop();
      return Fail(Status::InvalidArgument("cluster_self \"" + self_addr +
                                          "\" is not in the cluster map"));
    }
    server.UpdateClusterMap(map, static_cast<uint32_t>(self));
    std::printf("cluster: epoch %llu, %u partition(s) over %zu endpoint(s), "
                "self=%s\n",
                (unsigned long long)map->epoch, map->num_partitions(),
                map->endpoints.size(), self_addr.c_str());
  }

  // Replica mode: tail a primary's committed-update feed into this
  // server's backend; the resume token survives restarts next to the data.
  std::unique_ptr<cluster::Replicator> replicator;
  const std::string replica_of = args.Flag("replica_of");
  if (!replica_of.empty()) {
    cluster::ReplicatorOptions ro;
    ro.primary_addr = replica_of;
    ro.poll_interval_ms = std::strtoull(
        args.Flag("replica_poll_ms", "20").c_str(), nullptr, 10);
    ro.state_path = args.Flag("replica_state", dir + "/replica.state");
    replicator = std::make_unique<cluster::Replicator>(server.backend(), ro);
    cluster::Replicator* rep = replicator.get();
    server.SetStatsSource([rep](net::StatsSnapshot* st) {
      const cluster::ReplicationProgress p = rep->progress();
      st->replicated_records = p.replicated_records;
      st->replica_lag_records = p.replica_lag_records;
      st->replication_reconnects = p.reconnects;
    });
    s = replicator->Start();
    if (!s.ok()) {
      server.Stop();
      return Fail(s);
    }
    std::printf("replicating from %s (state: %s)\n", replica_of.c_str(),
                ro.state_path.c_str());
  }

  std::printf("serving %s (dim=%u, shard_bits=%u, kernels=%s) on %s "
              "— Ctrl-C to stop\n",
              server.backend()->name().c_str(), server.backend()->dim(),
              server.backend()->shard_bits(),
              simd::KernelTierName(simd::ActiveKernelTier()),
              server.addr().c_str());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_stop_requested) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("\nstopping...\n");
  if (replicator != nullptr) replicator->Stop();
  const net::StatsSnapshot st = server.stats();
  server.Stop();
  std::printf("served %llu requests over %llu connections "
              "(p50=%lluus p99=%lluus)\n",
              (unsigned long long)st.requests,
              (unsigned long long)st.connections,
              (unsigned long long)st.latency_p50_us,
              (unsigned long long)st.latency_p99_us);
  // The tier comes back through the stats snapshot (it is also on the
  // wire for remote stats clients), not re-detected here.
  std::printf("kernels: %s tier for fused optimizer updates and row "
              "copies\n",
              simd::KernelTierName(
                  static_cast<simd::KernelTier>(st.kernel_tier)));
  std::printf("storage io: %llu disk record reads, %llu pages flushed, "
              "%llu evicted; async reads %llu submitted / %llu completed / "
              "%llu refetched\n",
              (unsigned long long)st.disk_record_reads,
              (unsigned long long)st.pages_flushed,
              (unsigned long long)st.pages_evicted,
              (unsigned long long)st.async_reads_submitted,
              (unsigned long long)st.async_reads_completed,
              (unsigned long long)st.async_reads_refetched);
  std::printf("write pipeline: async writes %llu submitted / %llu completed; "
              "%llu fsyncs, %llu group commits\n",
              (unsigned long long)st.async_writes_submitted,
              (unsigned long long)st.async_writes_completed,
              (unsigned long long)st.fsyncs,
              (unsigned long long)st.group_commits);
  if (replicator != nullptr) {
    const cluster::ReplicationProgress p = replicator->progress();
    std::printf("replication: %llu records applied, %llu behind, "
                "%llu polls, %llu reconnects, %llu apply failures\n",
                (unsigned long long)p.replicated_records,
                (unsigned long long)p.replica_lag_records,
                (unsigned long long)p.polls,
                (unsigned long long)p.reconnects,
                (unsigned long long)p.apply_failures);
  }
  return 0;
}

void PrintStatsSnapshot(const net::StatsSnapshot& st) {
  std::printf("requests=%llu connections=%llu transport_errors=%llu "
              "p50=%lluus p99=%lluus\n",
              (unsigned long long)st.requests,
              (unsigned long long)st.connections,
              (unsigned long long)st.transport_errors,
              (unsigned long long)st.latency_p50_us,
              (unsigned long long)st.latency_p99_us);
  std::printf("ops:");
  for (uint8_t raw = 0; raw < net::kOpcodeSlots; ++raw) {
    if (!net::ValidOpcode(raw) || st.op_counts[raw] == 0) continue;
    std::printf(" %s=%llu", net::OpcodeName(static_cast<net::Opcode>(raw)),
                (unsigned long long)st.op_counts[raw]);
  }
  std::printf("\n");
  std::printf("io: disk_reads=%llu pages_flushed=%llu pages_evicted=%llu "
              "async_reads=%llu/%llu (refetched=%llu)\n",
              (unsigned long long)st.disk_record_reads,
              (unsigned long long)st.pages_flushed,
              (unsigned long long)st.pages_evicted,
              (unsigned long long)st.async_reads_submitted,
              (unsigned long long)st.async_reads_completed,
              (unsigned long long)st.async_reads_refetched);
  std::printf("writes: async=%llu/%llu fsyncs=%llu group_commits=%llu\n",
              (unsigned long long)st.async_writes_submitted,
              (unsigned long long)st.async_writes_completed,
              (unsigned long long)st.fsyncs,
              (unsigned long long)st.group_commits);
  std::printf("replication: records=%llu lag=%llu reconnects=%llu\n",
              (unsigned long long)st.replicated_records,
              (unsigned long long)st.replica_lag_records,
              (unsigned long long)st.replication_reconnects);
  std::printf("kernels: %s\n",
              simd::KernelTierName(
                  static_cast<simd::KernelTier>(st.kernel_tier)));
}

// `mlkv_cli - stats --addr <h:p>`: the kStats snapshot of a running
// server, optionally repeated (--watch N seconds) and paired with the
// server's Prometheus exposition (--metrics_addr).
int RunRemoteStats(ArgList& args) {
  const std::string addr = args.Flag("addr");
  if (addr.empty()) return Usage();
  const uint64_t watch_s =
      std::strtoull(args.Flag("watch", "0").c_str(), nullptr, 10);
  const std::string metrics_addr = args.Flag("metrics_addr");

  std::unique_ptr<net::RemoteBackend> remote;
  net::RemoteBackendOptions o;
  o.addr = addr;
  o.pool_size = 1;
  Status s = net::RemoteBackend::Connect(o, &remote);
  if (!s.ok()) return Fail(s);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  for (;;) {
    net::StatsSnapshot st;
    s = remote->FetchStats(&st);
    if (!s.ok()) return Fail(s);
    std::printf("--- %s ---\n", addr.c_str());
    PrintStatsSnapshot(st);
    if (!metrics_addr.empty()) {
      std::string body;
      s = obs::HttpGet(metrics_addr, "/metrics", &body);
      if (!s.ok()) return Fail(s);
      std::printf("%s", body.c_str());
    }
    std::fflush(stdout);
    if (watch_s == 0 || g_stop_requested) break;
    for (uint64_t i = 0; i < watch_s * 10 && !g_stop_requested; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (g_stop_requested) break;
  }
  return 0;
}

int RunClusterStatus(ArgList& args) {
  const std::string addr = args.Flag("addr");
  if (addr.empty()) return Usage();
  std::unique_ptr<net::RemoteBackend> seed;
  net::RemoteBackendOptions o;
  o.addr = addr;
  Status s = net::RemoteBackend::Connect(o, &seed);
  if (!s.ok()) return Fail(s);

  net::PayloadWriter req;
  Status transport;
  std::vector<uint8_t> body;
  size_t off = 0;
  s = seed->CallRaw(net::Opcode::kClusterMap, req, &transport, &body, &off);
  if (s.ok()) s = transport;
  if (!s.ok()) return Fail(s);
  net::PayloadReader r(body.data() + off, body.size() - off);
  cluster::ClusterMap map;
  s = cluster::DecodeClusterMap(&r, &map);
  if (!s.ok()) return Fail(s);

  std::printf("epoch %llu, %u partition(s), read preference: %s\n",
              (unsigned long long)map.epoch, map.num_partitions(),
              map.read_preference == cluster::ReadPreference::kReplica
                  ? "replica"
                  : "primary");
  for (uint32_t p = 0; p < map.num_partitions(); ++p) {
    const cluster::ClusterPartition& part = map.partitions[p];
    std::printf("  partition %-3u primary %s", p,
                map.endpoints[part.primary].c_str());
    for (const uint32_t rep : part.replicas) {
      std::printf("  replica %s", map.endpoints[rep].c_str());
    }
    std::printf("\n");
  }

  static const char* const kRoles[] = {"standalone", "primary", "replica"};
  for (const std::string& ep : map.endpoints) {
    std::unique_ptr<net::RemoteBackend> c;
    net::RemoteBackendOptions eo;
    eo.addr = ep;
    eo.pool_size = 1;
    if (!net::RemoteBackend::Connect(eo, &c).ok()) {
      std::printf("%-22s DOWN\n", ep.c_str());
      continue;
    }
    const net::HandshakeInfo& hs = c->handshake_info();
    net::StatsSnapshot st;
    if (!c->FetchStats(&st).ok()) {
      std::printf("%-22s up, role %s (stats unavailable)\n", ep.c_str(),
                  kRoles[hs.cluster_role <= 2 ? hs.cluster_role : 0]);
      continue;
    }
    std::printf("%-22s up, role %-10s epoch %-4llu %llu reqs "
                "(p50=%lluus p99=%lluus) replicated=%llu lag=%llu\n",
                ep.c_str(),
                kRoles[hs.cluster_role <= 2 ? hs.cluster_role : 0],
                (unsigned long long)hs.cluster_epoch,
                (unsigned long long)st.requests,
                (unsigned long long)st.latency_p50_us,
                (unsigned long long)st.latency_p99_us,
                (unsigned long long)st.replicated_records,
                (unsigned long long)st.replica_lag_records);
  }
  return 0;
}

int RunRemote(const std::string& cmd, ArgList& args) {
  const std::string addr = args.Flag("addr");
  if (addr.empty() || args.positional.empty()) return Usage();
  std::unique_ptr<KvBackend> remote;
  net::RemoteBackendOptions o;
  o.addr = addr;
  Status s = net::RemoteBackend::Connect(o, &remote);
  if (!s.ok()) return Fail(s);
  const Key key = std::strtoull(args.positional[0].c_str(), nullptr, 10);

  if (cmd == "remote-get") {
    std::vector<float> v(remote->dim());
    s = remote->PeekEmbedding(key, v.data());  // untracked: a CLI probe
                                               // must not advance clocks
    if (!s.ok()) return Fail(s);
    PrintVector(v.data(), remote->dim());
    return 0;
  }
  // remote-put
  if (args.positional.size() < 2) return Usage();
  const std::vector<float> v = ParseFloats(args.positional[1]);
  if (v.size() != remote->dim()) {
    std::fprintf(stderr, "expected %u floats, got %zu\n", remote->dim(),
                 v.size());
    return 1;
  }
  s = remote->PutEmbedding(key, v.data());
  if (!s.ok()) return Fail(s);
  std::printf("ok\n");
  return 0;
}

bool ParseOptimizer(const std::string& name, OptimizerConfig* out) {
  if (name == "sgd") {
    out->kind = OptimizerKind::kSgd;
  } else if (name == "momentum") {
    out->kind = OptimizerKind::kMomentum;
  } else if (name == "adagrad") {
    out->kind = OptimizerKind::kAdagrad;
  } else if (name == "adam") {
    out->kind = OptimizerKind::kAdam;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string dir = argv[1];
  const std::string cmd = argv[2];

  // Network commands bypass the local Mlkv open: serve owns its backend
  // via the factory, remote-* never touch local storage at all. `stats`
  // is network mode only when --addr is given (its classic form inspects
  // a local table).
  bool stats_has_addr = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--addr") == 0) stats_has_addr = true;
  }
  if (cmd == "serve" || cmd == "remote-get" || cmd == "remote-put" ||
      cmd == "cluster-status" || (cmd == "stats" && stats_has_addr)) {
    ArgList args;
    if (!args.ParseFrom(argc, argv, 3)) return Usage();
    if (cmd == "serve") return RunServe(dir, args);
    if (cmd == "cluster-status") return RunClusterStatus(args);
    if (cmd == "stats") return RunRemoteStats(args);
    return RunRemote(cmd, args);
  }

  MlkvOptions options;
  options.dir = dir;
  std::unique_ptr<Mlkv> db;
  Status s = Mlkv::Open(options, &db);
  if (!s.ok()) return Fail(s);

  auto open_table = [&](const char* id, EmbeddingTable** t) {
    return db->OpenExistingTable(id, t);
  };

  if (cmd == "tables") {
    for (const auto& id : db->ListTables()) {
      EmbeddingTable* t = nullptr;
      if (!open_table(id.c_str(), &t).ok()) continue;
      std::printf("%-24s dim=%-5u bound=%-10u optimizer=%-8s rows~%llu\n",
                  id.c_str(), t->dim(), t->staleness_bound(),
                  OptimizerKindName(t->optimizer().kind),
                  static_cast<unsigned long long>(t->num_embeddings()));
    }
    return 0;
  }

  if (cmd == "create") {
    if (argc < 6) return Usage();
    OptimizerConfig opt;
    if (argc > 6 && !ParseOptimizer(argv[6], &opt)) return Usage();
    EmbeddingTable* t = nullptr;
    s = db->OpenTable(argv[3],
                      static_cast<uint32_t>(std::strtoul(argv[4], nullptr, 10)),
                      static_cast<uint32_t>(std::strtoul(argv[5], nullptr, 10)),
                      &t, opt);
    if (!s.ok()) return Fail(s);
    std::printf("created %s\n", argv[3]);
    return CommitAndExit(db.get(), 0);
  }

  if (cmd == "checkpoint") {
    // Open everything listed in the manifest first so all tables persist.
    for (const auto& id : db->ListTables()) {
      EmbeddingTable* t = nullptr;
      s = open_table(id.c_str(), &t);
      if (!s.ok()) return Fail(s);
    }
    s = db->CheckpointAll();
    if (!s.ok()) return Fail(s);
    std::printf("checkpointed %zu table(s)\n", db->ListTables().size());
    return 0;
  }

  // Everything below needs a table argument.
  if (argc < 4) return Usage();
  EmbeddingTable* table = nullptr;
  s = open_table(argv[3], &table);
  if (!s.ok()) return Fail(s);

  if (cmd == "stats") {
    ShardedStore* store = table->store();
    const auto st = store->stats();
    std::printf("reads=%llu upserts=%llu rmws=%llu deletes=%llu\n",
                (unsigned long long)st.reads, (unsigned long long)st.upserts,
                (unsigned long long)st.rmws, (unsigned long long)st.deletes);
    std::printf("inplace=%llu rcu=%llu inserts=%llu\n",
                (unsigned long long)st.inplace_updates,
                (unsigned long long)st.rcu_appends,
                (unsigned long long)st.inserts);
    std::printf("shards=%zu index slots=%llu\n", store->num_shards(),
                (unsigned long long)store->index_slots());
    for (size_t i = 0; i < store->num_shards(); ++i) {
      const auto& log = store->shard(i)->log();
      std::printf("shard %02zu log: begin=%llu head=%llu read_only=%llu "
                  "tail=%llu\n",
                  i, (unsigned long long)log.begin_address(),
                  (unsigned long long)log.head_address(),
                  (unsigned long long)log.read_only_address(),
                  (unsigned long long)log.tail());
    }
    return 0;
  }

  if (cmd == "get") {
    if (argc < 5) return Usage();
    const Key key = std::strtoull(argv[4], nullptr, 10);
    std::vector<float> v(table->dim());
    s = table->Get({&key, 1}, v.data());
    if (!s.ok()) return Fail(s);
    PrintVector(v.data(), table->dim());
    return 0;
  }

  if (cmd == "put") {
    if (argc < 6) return Usage();
    const Key key = std::strtoull(argv[4], nullptr, 10);
    std::vector<float> v = ParseFloats(argv[5]);
    if (v.size() != table->dim()) {
      std::fprintf(stderr, "expected %u floats, got %zu\n", table->dim(),
                   v.size());
      return 1;
    }
    s = table->Put({&key, 1}, v.data());
    if (!s.ok()) return Fail(s);
    std::printf("ok\n");
    return CommitAndExit(db.get(), 0);
  }

  if (cmd == "del") {
    if (argc < 5) return Usage();
    const Key key = std::strtoull(argv[4], nullptr, 10);
    s = table->store()->Delete(key);
    if (!s.ok()) return Fail(s);
    std::printf("ok\n");
    return CommitAndExit(db.get(), 0);
  }

  if (cmd == "scan") {
    const uint64_t limit =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 20;
    uint64_t shown = 0;
    for (size_t sh = 0; sh < table->store()->num_shards() && shown < limit;
         ++sh) {
      for (LiveLogIterator it(table->store()->shard(sh));
           it.Valid() && shown < limit; it.Next(), ++shown) {
        std::printf("%-12llu ", (unsigned long long)it.meta().key);
        PrintVector(reinterpret_cast<const float*>(it.value().data()),
                    table->dim());
      }
    }
    std::printf("(%llu shown)\n", (unsigned long long)shown);
    return 0;
  }

  if (cmd == "tail") {
    ArgList targs;
    if (!targs.ParseFrom(argc, argv, 4)) return Usage();
    const uint64_t limit =
        std::strtoull(targs.Flag("limit", "50").c_str(), nullptr, 10);
    const size_t shard = static_cast<size_t>(
        std::strtoul(targs.Flag("shard", "0").c_str(), nullptr, 10));
    const Address from =
        std::strtoull(targs.Flag("from", "0").c_str(), nullptr, 10);
    if (shard >= table->store()->num_shards()) {
      std::fprintf(stderr, "shard %zu out of range (store has %zu)\n", shard,
                   table->store()->num_shards());
      return 1;
    }
    // The cursor only yields entries below the shard's durable watermark —
    // everything printed here survives a crash.
    UpdateLogCursor cur(table->store()->shard(shard), from);
    UpdateEntry e;
    uint64_t shown = 0;
    while (shown < limit && cur.Next(&e)) {
      std::printf("@%-12llu key=%-12llu gen=%-6u stale=%-6u %s",
                  (unsigned long long)e.address, (unsigned long long)e.key,
                  e.generation, e.staleness,
                  e.tombstone ? "tombstone\n" : "");
      if (!e.tombstone) {
        const uint32_t n =
            std::min<uint32_t>(table->dim(),
                               static_cast<uint32_t>(e.value.size() /
                                                     sizeof(float)));
        PrintVector(reinterpret_cast<const float*>(e.value.data()), n);
      }
      ++shown;
    }
    if (!cur.status().ok()) return Fail(cur.status());
    std::printf("(%llu entries; resume with --from %llu)\n",
                (unsigned long long)shown,
                (unsigned long long)cur.position());
    return 0;
  }

  if (cmd == "compact") {
    CompactionResult r;
    s = table->store()->CompactAll(&r);
    if (!s.ok()) return Fail(s);
    std::printf("scanned=%llu live_copied=%llu dead=%llu tombstones=%llu "
                "new_begin=%llu\n",
                (unsigned long long)r.scanned,
                (unsigned long long)r.live_copied,
                (unsigned long long)r.dead_skipped,
                (unsigned long long)r.tombstones_dropped,
                (unsigned long long)r.new_begin);
    return CommitAndExit(db.get(), 0);
  }

  if (cmd == "export" || cmd == "import") {
    if (argc < 5) return Usage();
    s = cmd == "export" ? table->Export(argv[4]) : table->Import(argv[4]);
    if (!s.ok()) return Fail(s);
    std::printf("ok\n");
    return cmd == "import" ? CommitAndExit(db.get(), 0) : 0;
  }

  return Usage();
}
