// mlkv_cli: command-line inspection and maintenance for an MLKV directory.
//
//   mlkv_cli <dir> tables
//   mlkv_cli <dir> create <table> <dim> <staleness_bound> [sgd|momentum|adagrad|adam]
//   mlkv_cli <dir> stats <table>
//   mlkv_cli <dir> get <table> <key>
//   mlkv_cli <dir> put <table> <key> <v0,v1,...>
//   mlkv_cli <dir> del <table> <key>
//   mlkv_cli <dir> scan <table> [limit]
//   mlkv_cli <dir> compact <table>
//   mlkv_cli <dir> export <table> <path>
//   mlkv_cli <dir> import <table> <path>
//   mlkv_cli <dir> checkpoint
//
// Demonstrates the operational surface of the library: the manifest
// (OpenExistingTable), log scans, GC, export/import, and checkpoints.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "kv/log_iterator.h"
#include "mlkv/mlkv.h"

using namespace mlkv;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: mlkv_cli <dir> <command> [args]\n"
      "  tables                              list tables in the manifest\n"
      "  create <t> <dim> <bound> [opt]      create a table\n"
      "  stats <t>                           store statistics\n"
      "  get <t> <key>                       print one embedding\n"
      "  put <t> <key> <v0,v1,...>           write one embedding\n"
      "  del <t> <key>                       delete one embedding\n"
      "  scan <t> [limit]                    list live keys (log order)\n"
      "  compact <t>                         garbage-collect the log\n"
      "  export <t> <path> | import <t> <path>\n"
      "  checkpoint                          checkpoint every open table\n");
  return 2;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

// The store's durability unit is the checkpoint (paper §II-B), and every
// CLI invocation is its own process — so mutating commands checkpoint
// before exiting or their effect would vanish with the process.
int CommitAndExit(Mlkv* db, int rc) {
  if (rc == 0) {
    const Status s = db->CheckpointAll();
    if (!s.ok()) return Fail(s);
  }
  return rc;
}

std::vector<float> ParseFloats(const std::string& csv) {
  std::vector<float> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    out.push_back(std::strtof(csv.substr(pos, next - pos).c_str(), nullptr));
    pos = next + 1;
  }
  return out;
}

void PrintVector(const float* v, uint32_t dim) {
  std::printf("[");
  for (uint32_t d = 0; d < dim; ++d) {
    std::printf("%s%.4f", d ? ", " : "", v[d]);
  }
  std::printf("]\n");
}

bool ParseOptimizer(const std::string& name, OptimizerConfig* out) {
  if (name == "sgd") {
    out->kind = OptimizerKind::kSgd;
  } else if (name == "momentum") {
    out->kind = OptimizerKind::kMomentum;
  } else if (name == "adagrad") {
    out->kind = OptimizerKind::kAdagrad;
  } else if (name == "adam") {
    out->kind = OptimizerKind::kAdam;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string dir = argv[1];
  const std::string cmd = argv[2];

  MlkvOptions options;
  options.dir = dir;
  std::unique_ptr<Mlkv> db;
  Status s = Mlkv::Open(options, &db);
  if (!s.ok()) return Fail(s);

  auto open_table = [&](const char* id, EmbeddingTable** t) {
    return db->OpenExistingTable(id, t);
  };

  if (cmd == "tables") {
    for (const auto& id : db->ListTables()) {
      EmbeddingTable* t = nullptr;
      if (!open_table(id.c_str(), &t).ok()) continue;
      std::printf("%-24s dim=%-5u bound=%-10u optimizer=%-8s rows~%llu\n",
                  id.c_str(), t->dim(), t->staleness_bound(),
                  OptimizerKindName(t->optimizer().kind),
                  static_cast<unsigned long long>(t->num_embeddings()));
    }
    return 0;
  }

  if (cmd == "create") {
    if (argc < 6) return Usage();
    OptimizerConfig opt;
    if (argc > 6 && !ParseOptimizer(argv[6], &opt)) return Usage();
    EmbeddingTable* t = nullptr;
    s = db->OpenTable(argv[3],
                      static_cast<uint32_t>(std::strtoul(argv[4], nullptr, 10)),
                      static_cast<uint32_t>(std::strtoul(argv[5], nullptr, 10)),
                      &t, opt);
    if (!s.ok()) return Fail(s);
    std::printf("created %s\n", argv[3]);
    return CommitAndExit(db.get(), 0);
  }

  if (cmd == "checkpoint") {
    // Open everything listed in the manifest first so all tables persist.
    for (const auto& id : db->ListTables()) {
      EmbeddingTable* t = nullptr;
      s = open_table(id.c_str(), &t);
      if (!s.ok()) return Fail(s);
    }
    s = db->CheckpointAll();
    if (!s.ok()) return Fail(s);
    std::printf("checkpointed %zu table(s)\n", db->ListTables().size());
    return 0;
  }

  // Everything below needs a table argument.
  if (argc < 4) return Usage();
  EmbeddingTable* table = nullptr;
  s = open_table(argv[3], &table);
  if (!s.ok()) return Fail(s);

  if (cmd == "stats") {
    ShardedStore* store = table->store();
    const auto st = store->stats();
    std::printf("reads=%llu upserts=%llu rmws=%llu deletes=%llu\n",
                (unsigned long long)st.reads, (unsigned long long)st.upserts,
                (unsigned long long)st.rmws, (unsigned long long)st.deletes);
    std::printf("inplace=%llu rcu=%llu inserts=%llu\n",
                (unsigned long long)st.inplace_updates,
                (unsigned long long)st.rcu_appends,
                (unsigned long long)st.inserts);
    std::printf("shards=%zu index slots=%llu\n", store->num_shards(),
                (unsigned long long)store->index_slots());
    for (size_t i = 0; i < store->num_shards(); ++i) {
      const auto& log = store->shard(i)->log();
      std::printf("shard %02zu log: begin=%llu head=%llu read_only=%llu "
                  "tail=%llu\n",
                  i, (unsigned long long)log.begin_address(),
                  (unsigned long long)log.head_address(),
                  (unsigned long long)log.read_only_address(),
                  (unsigned long long)log.tail());
    }
    return 0;
  }

  if (cmd == "get") {
    if (argc < 5) return Usage();
    const Key key = std::strtoull(argv[4], nullptr, 10);
    std::vector<float> v(table->dim());
    s = table->Get({&key, 1}, v.data());
    if (!s.ok()) return Fail(s);
    PrintVector(v.data(), table->dim());
    return 0;
  }

  if (cmd == "put") {
    if (argc < 6) return Usage();
    const Key key = std::strtoull(argv[4], nullptr, 10);
    std::vector<float> v = ParseFloats(argv[5]);
    if (v.size() != table->dim()) {
      std::fprintf(stderr, "expected %u floats, got %zu\n", table->dim(),
                   v.size());
      return 1;
    }
    s = table->Put({&key, 1}, v.data());
    if (!s.ok()) return Fail(s);
    std::printf("ok\n");
    return CommitAndExit(db.get(), 0);
  }

  if (cmd == "del") {
    if (argc < 5) return Usage();
    const Key key = std::strtoull(argv[4], nullptr, 10);
    s = table->store()->Delete(key);
    if (!s.ok()) return Fail(s);
    std::printf("ok\n");
    return CommitAndExit(db.get(), 0);
  }

  if (cmd == "scan") {
    const uint64_t limit =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 20;
    uint64_t shown = 0;
    for (size_t sh = 0; sh < table->store()->num_shards() && shown < limit;
         ++sh) {
      for (LiveLogIterator it(table->store()->shard(sh));
           it.Valid() && shown < limit; it.Next(), ++shown) {
        std::printf("%-12llu ", (unsigned long long)it.meta().key);
        PrintVector(reinterpret_cast<const float*>(it.value().data()),
                    table->dim());
      }
    }
    std::printf("(%llu shown)\n", (unsigned long long)shown);
    return 0;
  }

  if (cmd == "compact") {
    CompactionResult r;
    s = table->store()->CompactAll(&r);
    if (!s.ok()) return Fail(s);
    std::printf("scanned=%llu live_copied=%llu dead=%llu tombstones=%llu "
                "new_begin=%llu\n",
                (unsigned long long)r.scanned,
                (unsigned long long)r.live_copied,
                (unsigned long long)r.dead_skipped,
                (unsigned long long)r.tombstones_dropped,
                (unsigned long long)r.new_begin);
    return CommitAndExit(db.get(), 0);
  }

  if (cmd == "export" || cmd == "import") {
    if (argc < 5) return Usage();
    s = cmd == "export" ? table->Export(argv[4]) : table->Import(argv[4]);
    if (!s.ok()) return Fail(s);
    std::printf("ok\n");
    return cmd == "import" ? CommitAndExit(db.get(), 0) : 0;
  }

  return Usage();
}
