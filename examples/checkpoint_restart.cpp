// Checkpoint/restart: training that survives a crash (paper §II-B,
// heterogeneous storage — fast local logs + periodic checkpoints).
//
//   build/examples/checkpoint_restart
//
// Phase 1 trains an embedding table with a fused Adagrad optimizer and
// checkpoints every few epochs. A "crash" is simulated by dropping the
// Mlkv instance mid-run (losing everything after the last checkpoint).
// Phase 2 reopens the same directory: the manifest re-attaches the table,
// the store recovers from the checkpoint — including optimizer state, so
// the effective learning rate continues to decay instead of resetting —
// and training resumes to convergence.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "io/temp_dir.h"
#include "mlkv/mlkv.h"

using namespace mlkv;

namespace {

constexpr uint32_t kDim = 8;
constexpr Key kNumRows = 256;

// Per-row regression target the training loop should recover.
float TargetFor(Key row, uint32_t d) {
  return 0.01f * static_cast<float>(row % 17) -
         0.02f * static_cast<float>(d);
}

// One pass of gradient steps over all rows; returns max |w - target|.
Status TrainEpoch(EmbeddingTable* table, double* max_err) {
  std::vector<float> w(kDim), grad(kDim);
  *max_err = 0.0;
  for (Key row = 0; row < kNumRows; ++row) {
    MLKV_RETURN_NOT_OK(table->GetOrInit({&row, 1}, w.data()));
    for (uint32_t d = 0; d < kDim; ++d) {
      const float t = TargetFor(row, d);
      grad[d] = 2.0f * (w[d] - t);
      *max_err = std::max(*max_err,
                          static_cast<double>(std::fabs(w[d] - t)));
    }
    MLKV_RETURN_NOT_OK(table->ApplyGradients({&row, 1}, grad.data()));
  }
  return Status::OK();
}

}  // namespace

int main() {
  TempDir workdir("mlkv-ckpt");
  MlkvOptions options;
  options.dir = workdir.File("db");
  options.mem_size = 16ull << 20;

  OptimizerConfig adagrad;
  adagrad.kind = OptimizerKind::kAdagrad;
  adagrad.lr = 0.3f;

  // ---- Phase 1: train, checkpoint periodically, then "crash". ----
  int last_checkpoint_epoch = -1;
  {
    std::unique_ptr<Mlkv> db;
    Status s = Mlkv::Open(options, &db);
    if (!s.ok()) {
      std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
      return 1;
    }
    EmbeddingTable* table = nullptr;
    s = db->OpenTable("rows", kDim, /*staleness_bound=*/8, &table, adagrad);
    if (!s.ok()) {
      std::fprintf(stderr, "table: %s\n", s.ToString().c_str());
      return 1;
    }
    for (int epoch = 0; epoch < 10; ++epoch) {
      double err = 0;
      if (!TrainEpoch(table, &err).ok()) return 1;
      std::printf("phase1 epoch %2d  max_err %.4f\n", epoch, err);
      if (epoch % 4 == 3) {
        if (!db->CheckpointAll().ok()) return 1;
        last_checkpoint_epoch = epoch;
        std::printf("         checkpointed at epoch %d\n", epoch);
      }
    }
    std::printf("phase1: simulated crash (work after epoch %d is lost)\n",
                last_checkpoint_epoch);
    // db drops here without a final checkpoint.
  }

  // ---- Phase 2: reopen and resume. ----
  std::unique_ptr<Mlkv> db;
  Status s = Mlkv::Open(options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "reopen: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("phase2: manifest lists %zu table(s)\n",
              db->ListTables().size());
  EmbeddingTable* table = nullptr;
  // Configuration must match the manifest row; the store recovers from the
  // epoch-7 checkpoint automatically.
  s = db->OpenTable("rows", kDim, 8, &table, adagrad);
  if (!s.ok()) {
    std::fprintf(stderr, "reattach: %s\n", s.ToString().c_str());
    return 1;
  }
  double resumed_err = 0;
  for (int epoch = 0; epoch < 10; ++epoch) {
    if (!TrainEpoch(table, &resumed_err).ok()) return 1;
    if (epoch == 0) {
      std::printf("phase2 epoch  0  max_err %.4f  <- resumed from the "
                  "checkpoint, not from scratch\n",
                  resumed_err);
    } else {
      std::printf("phase2 epoch %2d  max_err %.4f\n", epoch, resumed_err);
    }
  }
  if (!db->CheckpointAll().ok()) return 1;

  // Export the converged table for serving.
  const std::string export_path = workdir.File("rows.export");
  if (!table->Export(export_path).ok()) return 1;
  std::printf("exported %llu embeddings to %s\n",
              static_cast<unsigned long long>(table->num_embeddings()),
              export_path.c_str());
  std::printf("done: final max_err %.4f (converged=%s)\n", resumed_err,
              resumed_err < 0.05 ? "yes" : "no");
  return resumed_err < 0.05 ? 0 : 1;
}
