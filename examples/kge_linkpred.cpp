// Knowledge-graph embedding training (DGL-KE-MLKV's role): DistMult or
// ComplEx with negative sampling on a synthetic clustered KG, Hits@10
// reported over time — optionally with the Marius-style BETA partition
// traversal that Fig. 9(b) evaluates.
//
//   build/examples/kge_linkpred [--batches=800] [--complex] [--beta]
#include <cstdio>
#include <cstring>
#include <memory>

#include "backend/kv_backend.h"
#include "io/temp_dir.h"
#include "train/kge_trainer.h"

using namespace mlkv;

int main(int argc, char** argv) {
  uint64_t batches = 800;
  bool use_complex = false;
  bool use_beta = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--batches=", 10) == 0) {
      batches = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strcmp(argv[i], "--complex") == 0) {
      use_complex = true;
    } else if (std::strcmp(argv[i], "--beta") == 0) {
      use_beta = true;
    }
  }

  TempDir workdir("mlkv-kge");
  BackendConfig cfg;
  cfg.dir = workdir.File("db");
  cfg.dim = 32;
  cfg.buffer_bytes = 8ull << 20;
  cfg.staleness_bound = 16;
  std::unique_ptr<KvBackend> backend;
  if (!MakeBackend(BackendKind::kMlkv, cfg, &backend).ok()) return 1;

  KgeTrainerOptions o;
  o.data.num_entities = 20000;
  o.data.num_relations = 8;
  o.data.num_clusters = 16;
  o.dim = 32;
  o.model = use_complex ? KgeModelKind::kComplEx : KgeModelKind::kDistMult;
  o.batch_size = 128;
  o.num_workers = 2;
  o.train_batches = batches;
  o.eval_every = static_cast<int>(batches / 8);
  o.eval_triples = 400;
  o.lookahead_depth = 4;
  o.use_beta = use_beta;

  std::printf("training %s on synthetic KG (%llu entities%s)...\n",
              KgeModelName(o.model),
              (unsigned long long)o.data.num_entities,
              use_beta ? ", BETA traversal" : "");
  KgeTrainer trainer(backend.get(), o);
  const TrainResult r = trainer.Train();

  std::printf("\n%-10s %-10s\n", "seconds", "Hits@10");
  for (const auto& [sec, hits] : r.metric_curve) {
    std::printf("%-10.1f %-10.4f\n", sec, hits);
  }
  std::printf("\nthroughput: %.0f triples/s, final Hits@10 %.3f "
              "(random ~ 0.20)\n",
              r.throughput(), r.final_metric);
  return 0;
}
