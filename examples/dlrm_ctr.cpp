// DLRM click-through-rate training on a synthetic Criteo-style stream —
// the paper's flagship workload (PERSIA-MLKV). Trains an FFNN over an
// out-of-core MLKV embedding table and prints the AUC convergence curve.
//
//   build/examples/dlrm_ctr [--batches=400] [--buffer_mb=8] [--dcn]
#include <cstdio>
#include <cstring>
#include <memory>

#include "backend/kv_backend.h"
#include "io/temp_dir.h"
#include "train/ctr_trainer.h"

using namespace mlkv;

int main(int argc, char** argv) {
  uint64_t batches = 400;
  uint64_t buffer_mb = 8;
  bool dcn = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--batches=", 10) == 0) {
      batches = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--buffer_mb=", 12) == 0) {
      buffer_mb = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (std::strcmp(argv[i], "--dcn") == 0) {
      dcn = true;
    }
  }

  TempDir workdir("mlkv-dlrm");
  BackendConfig cfg;
  cfg.dir = workdir.File("db");
  cfg.dim = 16;
  cfg.buffer_bytes = buffer_mb << 20;
  cfg.staleness_bound = 16;  // SSP
  std::unique_ptr<KvBackend> backend;
  if (!MakeBackend(BackendKind::kMlkv, cfg, &backend).ok()) return 1;

  CtrTrainerOptions o;
  o.data.num_fields = 8;
  o.data.field_cardinality = 50000;  // 400k embeddings, larger than buffer
  o.dim = 16;
  o.model = dcn ? CtrModelKind::kDcn : CtrModelKind::kFfnn;
  o.batch_size = 128;
  o.num_workers = 2;
  o.train_batches = batches;
  o.eval_every = static_cast<int>(batches / 8);
  o.eval_samples = 2000;
  o.embedding_lr = 0.3f;
  o.lookahead_depth = 4;  // hide disk reads for upcoming batches

  std::printf("training %s on synthetic Criteo (%llu embeddings, %llu MiB "
              "buffer, bound=%u, lookahead on)...\n",
              dcn ? "DCN" : "FFNN",
              (unsigned long long)(o.data.num_fields *
                                   o.data.field_cardinality),
              (unsigned long long)buffer_mb, cfg.staleness_bound);

  CtrTrainer trainer(backend.get(), o);
  const TrainResult r = trainer.Train();

  std::printf("\n%-10s %-10s\n", "seconds", "AUC");
  for (const auto& [sec, auc] : r.metric_curve) {
    std::printf("%-10.1f %-10.4f\n", sec, auc);
  }
  std::printf("\nthroughput: %.0f samples/s over %llu samples\n",
              r.throughput(), (unsigned long long)r.samples);
  std::printf("phase split: emb=%.1fs fwd=%.1fs bwd=%.1fs (of %.1fs wall)\n",
              r.embedding_seconds, r.forward_seconds, r.backward_seconds,
              r.seconds);
  std::printf("disk traffic: %.1f MiB read, %.1f MiB written\n",
              r.device_bytes_read / 1048576.0,
              r.device_bytes_written / 1048576.0);
  return 0;
}
