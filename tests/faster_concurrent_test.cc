// Concurrency stress tests for the hybrid-log store. These intentionally
// hammer the latch-free paths with small buffers so that RCU, promotion,
// flushing, and eviction all happen under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/random.h"
#include "io/temp_dir.h"
#include "kv/faster_store.h"

namespace mlkv {
namespace {

FasterOptions StressStore(const TempDir& dir) {
  FasterOptions o;
  o.path = dir.File("stress.log");
  o.index_slots = 4096;
  o.page_size = 16384;
  o.mem_size = 8 * 16384;
  o.mutable_fraction = 0.5;
  return o;
}

// Values are self-describing: 8-byte key followed by an 8-byte version, then
// a fill byte derived from both. Readers verify internal consistency, which
// catches torn reads and cross-key corruption.
constexpr uint32_t kValueSize = 64;

void EncodeValue(Key key, uint64_t version, char* buf) {
  std::memcpy(buf, &key, 8);
  std::memcpy(buf + 8, &version, 8);
  const char fill = static_cast<char>((key * 31 + version) & 0xff);
  std::memset(buf + 16, fill, kValueSize - 16);
}

bool CheckValue(Key key, const char* buf, uint64_t* version_out) {
  Key k;
  uint64_t version;
  std::memcpy(&k, buf, 8);
  std::memcpy(&version, buf + 8, 8);
  if (k != key) return false;
  const char fill = static_cast<char>((key * 31 + version) & 0xff);
  for (uint32_t i = 16; i < kValueSize; ++i) {
    if (buf[i] != fill) return false;
  }
  if (version_out != nullptr) *version_out = version;
  return true;
}

TEST(FasterConcurrentTest, ParallelDisjointUpserts) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(StressStore(dir)).ok());
  constexpr int kThreads = 8;
  constexpr Key kPerThread = 500;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      char buf[kValueSize];
      for (Key i = 0; i < kPerThread; ++i) {
        const Key key = static_cast<Key>(t) * kPerThread + i;
        EncodeValue(key, 1, buf);
        if (!store.Upsert(key, buf, kValueSize).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);
  char buf[kValueSize];
  for (Key key = 0; key < kThreads * kPerThread; ++key) {
    ASSERT_TRUE(store.Read(key, buf, kValueSize).ok()) << "key " << key;
    EXPECT_TRUE(CheckValue(key, buf, nullptr)) << "key " << key;
  }
}

TEST(FasterConcurrentTest, ReadersNeverSeeTornValues) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(StressStore(dir)).ok());
  constexpr Key kKeys = 64;  // hot set: stays mutable, max contention
  char init[kValueSize];
  for (Key k = 0; k < kKeys; ++k) {
    EncodeValue(k, 0, init);
    ASSERT_TRUE(store.Upsert(k, init, kValueSize).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {  // writers
    threads.emplace_back([&, t] {
      Rng rng(t + 1);
      char buf[kValueSize];
      uint64_t version = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        const Key key = rng.Uniform(kKeys);
        EncodeValue(key, version++, buf);
        store.Upsert(key, buf, kValueSize).ok();
      }
    });
  }
  for (int t = 0; t < 4; ++t) {  // readers
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      char buf[kValueSize];
      while (!stop.load(std::memory_order_relaxed)) {
        const Key key = rng.Uniform(kKeys);
        if (store.Read(key, buf, kValueSize).ok()) {
          if (!CheckValue(key, buf, nullptr)) torn.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(torn.load(), 0u);
}

TEST(FasterConcurrentTest, MixedColdHotTrafficStaysConsistent) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(StressStore(dir)).ok());
  constexpr Key kKeys = 4000;  // far exceeds the 128 KiB buffer
  char init[kValueSize];
  for (Key k = 0; k < kKeys; ++k) {
    EncodeValue(k, 0, init);
    ASSERT_TRUE(store.Upsert(k, init, kValueSize).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0}, read_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {  // zipfian writers: hot+cold mix
      ZipfianGenerator zipf(kKeys, 0.99, t + 1);
      char buf[kValueSize];
      uint64_t version = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        const Key key = zipf.NextScrambled();
        EncodeValue(key, version++, buf);
        store.Upsert(key, buf, kValueSize).ok();
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      ZipfianGenerator zipf(kKeys, 0.99, 100 + t);
      char buf[kValueSize];
      while (!stop.load(std::memory_order_relaxed)) {
        const Key key = zipf.NextScrambled();
        Status s = store.Read(key, buf, kValueSize);
        if (s.ok()) {
          if (!CheckValue(key, buf, nullptr)) torn.fetch_add(1);
        } else if (!s.IsNotFound()) {
          read_errors.fetch_add(1);
        }
      }
    });
  }
  // One thread promotes cold keys (lookahead-like traffic).
  threads.emplace_back([&] {
    Rng rng(555);
    while (!stop.load(std::memory_order_relaxed)) {
      store.Promote(rng.Uniform(kKeys)).ok();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(read_errors.load(), 0u);
  // All keys still resolve to valid values.
  char buf[kValueSize];
  for (Key k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(store.Read(k, buf, kValueSize).ok()) << "key " << k;
    EXPECT_TRUE(CheckValue(k, buf, nullptr)) << "key " << k;
  }
}

TEST(FasterConcurrentTest, RmwCountersAreExact) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(StressStore(dir)).ok());
  constexpr Key kKeys = 32;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 2000;
  auto add_one = [](char* value, uint32_t, bool exists) {
    int64_t v = 0;
    if (exists) std::memcpy(&v, value, sizeof(v));
    v += 1;
    std::memcpy(value, &v, sizeof(v));
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 1);
      std::vector<int> local(kKeys, 0);
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        const Key key = rng.Uniform(kKeys);
        ASSERT_TRUE(store.Rmw(key, sizeof(int64_t), add_one).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  int64_t total = 0;
  for (Key k = 0; k < kKeys; ++k) {
    std::string out;
    if (store.Read(k, &out).ok()) {
      int64_t v;
      std::memcpy(&v, out.data(), sizeof(v));
      total += v;
    }
  }
  EXPECT_EQ(total, static_cast<int64_t>(kThreads) * kIncrementsPerThread);
}

}  // namespace
}  // namespace mlkv
