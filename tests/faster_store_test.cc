#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "io/temp_dir.h"
#include "kv/faster_store.h"

namespace mlkv {
namespace {

FasterOptions SmallStore(const TempDir& dir, const char* name = "store.log") {
  FasterOptions o;
  o.path = dir.File(name);
  o.index_slots = 1024;
  o.page_size = 4096;
  o.mem_size = 8 * 4096;
  o.mutable_fraction = 0.5;
  return o;
}


TEST(FasterStoreTest, ReadMissingKeyNotFound) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  std::string out;
  EXPECT_TRUE(store.Read(1, &out).IsNotFound());
}

TEST(FasterStoreTest, UpsertThenRead) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  ASSERT_TRUE(store.Upsert(42, "hello", 5).ok());
  std::string out;
  ASSERT_TRUE(store.Read(42, &out).ok());
  EXPECT_EQ(out, "hello");
}

TEST(FasterStoreTest, UpdateOverwritesInPlace) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  ASSERT_TRUE(store.Upsert(1, "aaaa", 4).ok());
  ASSERT_TRUE(store.Upsert(1, "bbbb", 4).ok());
  std::string out;
  ASSERT_TRUE(store.Read(1, &out).ok());
  EXPECT_EQ(out, "bbbb");
  EXPECT_EQ(store.stats().inplace_updates, 1u);
  EXPECT_EQ(store.stats().inserts, 1u);
}

TEST(FasterStoreTest, DifferentSizeUpdateGoesRcu) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  ASSERT_TRUE(store.Upsert(1, "aaaa", 4).ok());
  ASSERT_TRUE(store.Upsert(1, "cccccccc", 8).ok());
  std::string out;
  ASSERT_TRUE(store.Read(1, &out).ok());
  EXPECT_EQ(out, "cccccccc");
  EXPECT_GE(store.stats().rcu_appends, 1u);
}

TEST(FasterStoreTest, ManyKeysSurviveSpillToDisk) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  // 1000 keys x 64B records >> 32 KiB buffer: most go cold.
  std::vector<char> value(32);
  for (Key k = 0; k < 1000; ++k) {
    std::memset(value.data(), static_cast<char>('a' + (k % 26)), 32);
    ASSERT_TRUE(store.Upsert(k, value.data(), 32).ok());
  }
  EXPECT_GT(store.log().head_address(), HybridLog::kLogBegin);
  for (Key k = 0; k < 1000; ++k) {
    std::string out;
    ASSERT_TRUE(store.Read(k, &out).ok()) << "key " << k;
    ASSERT_EQ(out.size(), 32u);
    EXPECT_EQ(out[0], static_cast<char>('a' + (k % 26))) << "key " << k;
  }
  EXPECT_GT(store.stats().disk_record_reads, 0u);
}

TEST(FasterStoreTest, UpdateColdKeyRcuAndReadsNewValue) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  std::vector<char> value(64, 'x');
  for (Key k = 0; k < 800; ++k) {
    ASSERT_TRUE(store.Upsert(k, value.data(), 64).ok());
  }
  // Key 0 is long cold now; update it.
  std::vector<char> nv(64, 'y');
  ASSERT_TRUE(store.Upsert(0, nv.data(), 64).ok());
  std::string out;
  ASSERT_TRUE(store.Read(0, &out).ok());
  EXPECT_EQ(out[0], 'y');
}

TEST(FasterStoreTest, DeleteHidesKey) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  ASSERT_TRUE(store.Upsert(5, "val", 3).ok());
  ASSERT_TRUE(store.Delete(5).ok());
  std::string out;
  EXPECT_TRUE(store.Read(5, &out).IsNotFound());
  EXPECT_TRUE(store.Delete(5).IsNotFound());
  // Re-insert after delete works.
  ASSERT_TRUE(store.Upsert(5, "new", 3).ok());
  ASSERT_TRUE(store.Read(5, &out).ok());
  EXPECT_EQ(out, "new");
}

TEST(FasterStoreTest, RmwCreatesAndModifies) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  auto add_one = [](char* value, uint32_t size, bool exists) {
    int64_t v = 0;
    if (exists) std::memcpy(&v, value, sizeof(v));
    v += 1;
    std::memcpy(value, &v, sizeof(v));
  };
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Rmw(9, sizeof(int64_t), add_one).ok());
  }
  std::string out;
  ASSERT_TRUE(store.Read(9, &out).ok());
  int64_t v;
  std::memcpy(&v, out.data(), sizeof(v));
  EXPECT_EQ(v, 10);
}

TEST(FasterStoreTest, RmwOnColdRecordPreservesCounter) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  auto add_one = [](char* value, uint32_t size, bool exists) {
    int64_t v = 0;
    if (exists) std::memcpy(&v, value, sizeof(v));
    v += 1;
    std::memcpy(value, &v, sizeof(v));
  };
  ASSERT_TRUE(store.Rmw(0, sizeof(int64_t), add_one).ok());
  // Push key 0 out of memory.
  std::vector<char> filler(128, 'f');
  for (Key k = 1; k < 600; ++k) {
    ASSERT_TRUE(store.Upsert(k, filler.data(), 128).ok());
  }
  ASSERT_TRUE(store.Rmw(0, sizeof(int64_t), add_one).ok());
  std::string out;
  ASSERT_TRUE(store.Read(0, &out).ok());
  int64_t v;
  std::memcpy(&v, out.data(), sizeof(v));
  EXPECT_EQ(v, 2);
}

TEST(FasterStoreTest, PromoteMovesDiskRecordToMemory) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  std::vector<char> value(64, 'p');
  ASSERT_TRUE(store.Upsert(7, value.data(), 64).ok());
  std::vector<char> filler(128, 'f');
  for (Key k = 100; k < 700; ++k) {
    ASSERT_TRUE(store.Upsert(k, filler.data(), 128).ok());
  }
  ASSERT_FALSE(store.IsInMemory(7)) << "key 7 should have been evicted";
  ASSERT_TRUE(store.Promote(7).ok());
  EXPECT_TRUE(store.IsInMemory(7));
  EXPECT_EQ(store.stats().promotions, 1u);
  std::string out;
  ASSERT_TRUE(store.Read(7, &out).ok());
  EXPECT_EQ(out[0], 'p');
}

TEST(FasterStoreTest, PromoteSkipsImmutableInMemoryRecords) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  std::vector<char> value(64, 'q');
  ASSERT_TRUE(store.Upsert(7, value.data(), 64).ok());
  // Push key 7 into the read-only (still in-memory) region only.
  std::vector<char> filler(128, 'f');
  for (Key k = 100; k < 250; ++k) {
    ASSERT_TRUE(store.Upsert(k, filler.data(), 128).ok());
  }
  ASSERT_TRUE(store.IsInMemory(7));
  const auto before = store.stats();
  ASSERT_TRUE(store.Promote(7).ok());
  const auto after = store.stats();
  EXPECT_EQ(after.promotions, before.promotions);
  EXPECT_EQ(after.promotions_skipped, before.promotions_skipped + 1);
}

TEST(FasterStoreTest, PromoteRespectsNoSkipAblation) {
  TempDir dir;
  FasterOptions o = SmallStore(dir);
  o.skip_promote_if_in_memory = false;  // DESIGN.md ablation D2
  FasterStore store;
  ASSERT_TRUE(store.Open(o).ok());
  std::vector<char> value(64, 'q');
  ASSERT_TRUE(store.Upsert(7, value.data(), 64).ok());
  std::vector<char> filler(128, 'f');
  for (Key k = 100; k < 250; ++k) {
    ASSERT_TRUE(store.Upsert(k, filler.data(), 128).ok());
  }
  ASSERT_LT(store.log().read_only_address(), store.log().tail());
  // Key 7 sits in the immutable region; without the skip it gets copied.
  if (!store.IsInMemory(7)) GTEST_SKIP() << "key evicted, not RO-resident";
  ASSERT_TRUE(store.Promote(7).ok());
  EXPECT_GE(store.stats().promotions, 1u);
}

TEST(FasterStoreTest, CheckpointRecoverRoundTrip) {
  TempDir dir;
  FasterOptions o = SmallStore(dir);
  {
    FasterStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (Key k = 0; k < 300; ++k) {
      std::string v = "value-" + std::to_string(k);
      ASSERT_TRUE(store.Upsert(k, v.data(), v.size()).ok());
    }
    ASSERT_TRUE(store.Checkpoint(dir.File("ckpt")).ok());
  }
  FasterStore restored;
  ASSERT_TRUE(restored.Recover(o, dir.File("ckpt")).ok());
  for (Key k = 0; k < 300; ++k) {
    std::string out;
    ASSERT_TRUE(restored.Read(k, &out).ok()) << "key " << k;
    EXPECT_EQ(out, "value-" + std::to_string(k));
  }
  // Recovered store accepts new writes.
  ASSERT_TRUE(restored.Upsert(1000, "fresh", 5).ok());
  std::string out;
  ASSERT_TRUE(restored.Read(1000, &out).ok());
  EXPECT_EQ(out, "fresh");
}

TEST(FasterStoreTest, FixedBufferReadReportsSizeAndTruncates) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  ASSERT_TRUE(store.Upsert(3, "0123456789", 10).ok());
  char buf[4];
  uint32_t size = 0;
  ASSERT_TRUE(store.Read(3, buf, 4, &size).ok());
  EXPECT_EQ(size, 10u);
  EXPECT_EQ(std::string(buf, 4), "0123");
}

TEST(FasterStoreTest, StatsCountOperations) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  ASSERT_TRUE(store.Upsert(1, "a", 1).ok());
  std::string out;
  ASSERT_TRUE(store.Read(1, &out).ok());
  const auto s = store.stats();
  EXPECT_EQ(s.upserts, 1u);
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.inserts, 1u);
}


TEST(FasterStoreGrowTest, AllKeysReadableAfterIndexGrowth) {
  TempDir dir;
  FasterOptions o = SmallStore(dir);
  o.index_slots = 16;  // deliberately undersized: long chains
  FasterStore store;
  ASSERT_TRUE(store.Open(o).ok());
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    const std::string v = "v" + std::to_string(i);
    ASSERT_TRUE(store.Upsert(i, v.data(), v.size()).ok());
  }
  ASSERT_TRUE(store.GrowIndex(4).ok());  // 16 -> 256 slots
  for (int i = 0; i < n; ++i) {
    std::string out;
    ASSERT_TRUE(store.Read(i, &out).ok()) << "key " << i;
    const std::string expect = "v" + std::to_string(i);
    EXPECT_EQ(out, expect);
  }
  // Updates and fresh inserts keep working against the refined slots.
  for (int i = 0; i < n + 100; ++i) {
    const std::string v = "w" + std::to_string(i);
    ASSERT_TRUE(store.Upsert(i, v.data(), v.size()).ok());
  }
  for (int i = 0; i < n + 100; ++i) {
    std::string out;
    ASSERT_TRUE(store.Read(i, &out).ok()) << "key " << i;
    const std::string expect = "w" + std::to_string(i);
    EXPECT_EQ(out, expect);
  }
}

TEST(FasterStoreGrowTest, MaybeGrowIndexHonorsLoadFactor) {
  TempDir dir;
  FasterOptions o = SmallStore(dir);
  o.index_slots = 16;
  FasterStore store;
  ASSERT_TRUE(store.Open(o).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.Upsert(i, "abcd", 4).ok());
  }
  // 200 keys / 16 slots = 12.5 load; growing to <= 1.5 needs 256 slots.
  ASSERT_TRUE(store.MaybeGrowIndex(1.5).ok());
  EXPECT_EQ(store.index_slots(), 256u);
  EXPECT_EQ(store.stats().inserts, 200u);
  std::string out;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.Read(i, &out).ok());
  }
  // Under the threshold now: another call is a no-op.
  ASSERT_TRUE(store.MaybeGrowIndex(1.5).ok());
  EXPECT_EQ(store.index_slots(), 256u);
}

TEST(FasterStoreGrowTest, GrowthSurvivesCheckpointRecover) {
  TempDir dir;
  FasterOptions o = SmallStore(dir);
  o.index_slots = 16;
  {
    FasterStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (int i = 0; i < 150; ++i) {
      const std::string v = "v" + std::to_string(i);
      ASSERT_TRUE(store.Upsert(i, v.data(), v.size()).ok());
    }
    ASSERT_TRUE(store.GrowIndex(3).ok());
    ASSERT_TRUE(store.Checkpoint(dir.File("g")).ok());
  }
  FasterStore recovered;
  ASSERT_TRUE(recovered.Recover(o, dir.File("g")).ok());
  EXPECT_EQ(recovered.index_slots(), 128u);
  for (int i = 0; i < 150; ++i) {
    std::string out;
    ASSERT_TRUE(recovered.Read(i, &out).ok()) << "key " << i;
    const std::string expect = "v" + std::to_string(i);
    EXPECT_EQ(out, expect);
  }
}

}  // namespace
}  // namespace mlkv
