// EmbeddingServer (inference path) tests: lookup correctness, cache
// behavior, missing-key policies, warmup, serving a recovered checkpoint,
// serving concurrently with a live trainer, and stats accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "io/temp_dir.h"
#include "mlkv/mlkv.h"
#include "serve/embedding_server.h"

namespace mlkv {
namespace {

constexpr uint32_t kDim = 8;

struct ServeFixture {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  EmbeddingTable* table = nullptr;

  explicit ServeFixture(Key rows, uint64_t mem_pages = 16) {
    MlkvOptions opts;
    opts.dir = dir.path() + "/db";
    opts.index_slots = 4096;
    opts.page_size = 4096;
    opts.mem_size = mem_pages * 4096;
    EXPECT_TRUE(Mlkv::Open(opts, &db).ok());
    EXPECT_TRUE(db->OpenTable("emb", kDim, 8, &table).ok());
    std::vector<float> v(kDim);
    for (Key k = 0; k < rows; ++k) {
      for (uint32_t d = 0; d < kDim; ++d) {
        v[d] = Expected(k, d);
      }
      EXPECT_TRUE(table->Put({&k, 1}, v.data()).ok());
    }
  }

  static float Expected(Key k, uint32_t d) {
    return static_cast<float>(k) + 0.125f * static_cast<float>(d);
  }
};

TEST(ServeTest, LookupReturnsStoredEmbeddings) {
  ServeFixture f(200);
  EmbeddingServer server(f.table, {});
  std::vector<Key> keys = {0, 7, 42, 199};
  std::vector<float> out(keys.size() * kDim);
  ASSERT_TRUE(server.Lookup(keys, out.data()).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    for (uint32_t d = 0; d < kDim; ++d) {
      EXPECT_FLOAT_EQ(out[i * kDim + d], ServeFixture::Expected(keys[i], d));
    }
  }
  const auto st = server.stats();
  EXPECT_EQ(st.lookups, keys.size());
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.store_hits, keys.size());
  EXPECT_EQ(st.cache_hits, 0u);
}

TEST(ServeTest, RepeatLookupsHitTheCache) {
  ServeFixture f(200);
  EmbeddingServer server(f.table, {});
  std::vector<Key> keys = {1, 2, 3, 4};
  std::vector<float> out(keys.size() * kDim);
  ASSERT_TRUE(server.Lookup(keys, out.data()).ok());
  ASSERT_TRUE(server.Lookup(keys, out.data()).ok());
  const auto st = server.stats();
  EXPECT_EQ(st.store_hits, keys.size());   // first pass only
  EXPECT_EQ(st.cache_hits, keys.size());   // second pass
}

TEST(ServeTest, CacheOnMissDisabledAlwaysReadsStore) {
  ServeFixture f(200);
  ServeOptions o;
  o.cache_on_miss = false;
  EmbeddingServer server(f.table, o);
  std::vector<Key> keys = {1, 2, 3, 4};
  std::vector<float> out(keys.size() * kDim);
  ASSERT_TRUE(server.Lookup(keys, out.data()).ok());
  ASSERT_TRUE(server.Lookup(keys, out.data()).ok());
  const auto st = server.stats();
  EXPECT_EQ(st.store_hits, 2 * keys.size());
  EXPECT_EQ(st.cache_hits, 0u);
}

TEST(ServeTest, MissingKeysZeroFillByDefault) {
  ServeFixture f(10);
  EmbeddingServer server(f.table, {});
  std::vector<Key> keys = {5, 99999};
  std::vector<float> out(keys.size() * kDim, 1.0f);
  ASSERT_TRUE(server.Lookup(keys, out.data()).ok());
  for (uint32_t d = 0; d < kDim; ++d) {
    EXPECT_FLOAT_EQ(out[kDim + d], 0.0f) << "missing key must zero-fill";
  }
  EXPECT_EQ(server.stats().missing, 1u);
}

TEST(ServeTest, MissingKeysCanFailTheBatch) {
  ServeFixture f(10);
  ServeOptions o;
  o.zero_fill_missing = false;
  EmbeddingServer server(f.table, o);
  std::vector<Key> keys = {5, 99999};
  std::vector<float> out(keys.size() * kDim);
  EXPECT_TRUE(server.Lookup(keys, out.data()).IsNotFound());
}

TEST(ServeTest, WarmPreloadsTheCache) {
  ServeFixture f(200);
  EmbeddingServer server(f.table, {});
  std::vector<Key> hot(50);
  for (Key k = 0; k < 50; ++k) hot[k] = k;
  ASSERT_TRUE(server.Warm(hot).ok());
  std::vector<float> out(hot.size() * kDim);
  ASSERT_TRUE(server.Lookup(hot, out.data()).ok());
  const auto st = server.stats();
  EXPECT_EQ(st.cache_hits, hot.size());
  EXPECT_EQ(st.store_hits, 0u);
}

TEST(ServeTest, WarmSkipsMissingKeys) {
  ServeFixture f(10);
  EmbeddingServer server(f.table, {});
  std::vector<Key> keys = {1, 77777, 2};
  ASSERT_TRUE(server.Warm(keys).ok());
}

TEST(ServeTest, LookupsDoNotConsumeStalenessBudget) {
  // Serving shares a table with training; its reads must be invisible to
  // the bounded-staleness protocol (Peek, not Read).
  ServeFixture f(50);
  ServeOptions o;
  o.cache_capacity = 1;  // force store reads
  o.cache_on_miss = false;
  EmbeddingServer server(f.table, o);
  Key key = 3;
  std::vector<float> out(kDim);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(server.Lookup({&key, 1}, out.data()).ok());
  }
  // With bound 8, a tracked read x200 would starve this Get.
  ASSERT_TRUE(f.table->Get({&key, 1}, out.data()).ok());
  ASSERT_TRUE(f.table->Put({&key, 1}, out.data()).ok());
}

TEST(ServeTest, ServesRecoveredCheckpointDirectory) {
  TempDir dir;
  MlkvOptions opts;
  opts.dir = dir.path() + "/db";
  opts.index_slots = 1024;
  opts.page_size = 4096;
  opts.mem_size = 16 * 4096;
  {
    std::unique_ptr<Mlkv> db;
    ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
    EmbeddingTable* t = nullptr;
    ASSERT_TRUE(db->OpenTable("emb", kDim, 8, &t).ok());
    std::vector<float> v(kDim, 2.5f);
    for (Key k = 0; k < 100; ++k) {
      ASSERT_TRUE(t->Put({&k, 1}, v.data()).ok());
    }
    ASSERT_TRUE(db->CheckpointAll().ok());
  }
  // Fresh process: recover and serve.
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenExistingTable("emb", &t).ok());
  EmbeddingServer server(t, {});
  std::vector<Key> keys = {0, 50, 99};
  std::vector<float> out(keys.size() * kDim);
  ASSERT_TRUE(server.Lookup(keys, out.data()).ok());
  for (float v : out) EXPECT_FLOAT_EQ(v, 2.5f);
}

TEST(ServeTest, ConcurrentLookupsAreSafeAndComplete) {
  ServeFixture f(2000, /*mem_pages=*/8);  // out-of-core
  EmbeddingServer server(f.table, {});
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      std::vector<Key> keys(16);
      std::vector<float> out(keys.size() * kDim);
      for (int i = 0; i < 500; ++i) {
        for (auto& k : keys) k = rng.Next() % 2000;
        if (!server.Lookup(keys, out.data()).ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t j = 0; j < keys.size(); ++j) {
          if (out[j * kDim] != ServeFixture::Expected(keys[j], 0)) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto st = server.stats();
  EXPECT_EQ(st.lookups, 4u * 500u * 16u);
  EXPECT_GT(st.cache_hits + st.store_hits, 0u);
}

TEST(ServeTest, ServingWhileTrainingSeesCommittedValues) {
  ServeFixture f(200);
  EmbeddingServer server(f.table, {});
  std::atomic<bool> stop{false};
  std::thread trainer([&] {
    std::vector<float> g(kDim, 0.01f);
    Rng rng(9);
    while (!stop.load(std::memory_order_acquire)) {
      const Key k = rng.Next() % 200;
      std::vector<float> v(kDim);
      if (f.table->Get({&k, 1}, v.data()).ok()) {
        f.table->ApplyGradients({&k, 1}, g.data(), 0.1f).ok();
      }
    }
  });
  Rng rng(4);
  std::vector<float> out(kDim);
  ServeOptions o;
  o.cache_on_miss = false;  // always observe the store
  EmbeddingServer fresh(f.table, o);
  for (int i = 0; i < 2000; ++i) {
    const Key k = rng.Next() % 200;
    ASSERT_TRUE(fresh.Lookup({&k, 1}, out.data()).ok());
    // Values only ever decrease from the seed under positive gradients.
    EXPECT_LE(out[0], ServeFixture::Expected(k, 0) + 1e-4f);
    EXPECT_TRUE(std::isfinite(out[0]));
  }
  stop.store(true, std::memory_order_release);
  trainer.join();
}

TEST(ServeTest, TinyLfuAdmissionGuardsTheServingCache) {
  ServeFixture f(4000);
  ServeOptions o;
  o.cache_capacity = 64;
  o.cache_shards = 1;
  o.cache_admission = CacheAdmission::kTinyLfu;
  EmbeddingServer server(f.table, o);
  std::vector<Key> hot(16);
  for (Key k = 0; k < 16; ++k) hot[k] = k;
  std::vector<float> out(64 * kDim);
  std::vector<Key> scan(16);
  for (int round = 0; round < 64; ++round) {
    ASSERT_TRUE(server.Lookup(hot, out.data()).ok());
    for (int i = 0; i < 16; ++i) scan[i] = 1000 + round * 16 + i;
    ASSERT_TRUE(server.Lookup(scan, out.data()).ok());
  }
  EXPECT_GT(server.stats().admission_rejects, 0u)
      << "one-hit scan keys should bounce off admission";
  // The hot working set survived the scan: a fresh pass over it is
  // (almost) all cache hits. A handful of misses right after a sketch
  // aging are legitimate.
  server.ResetStats();
  ASSERT_TRUE(server.Lookup(hot, out.data()).ok());
  EXPECT_GE(server.stats().cache_hits, 12u);
}

TEST(ServeTest, StatsPercentilesPopulated) {
  ServeFixture f(500);
  EmbeddingServer server(f.table, {});
  std::vector<Key> keys(32);
  std::vector<float> out(keys.size() * kDim);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    for (auto& k : keys) k = rng.Next() % 500;
    ASSERT_TRUE(server.Lookup(keys, out.data()).ok());
  }
  const auto st = server.stats();
  EXPECT_EQ(st.batches, 100u);
  EXPECT_LE(st.batch_p50_us, st.batch_p95_us);
  EXPECT_LE(st.batch_p95_us, st.batch_p99_us);
  EXPECT_LE(st.batch_p99_us, st.batch_max_us + 1);
  server.ResetStats();
  EXPECT_EQ(server.stats().batches, 0u);
}

}  // namespace
}  // namespace mlkv
