// ShardedStore tests: routing, scatter/gather caller-order mapping, the
// shard_bits=0 single-store equivalence, budget splitting, and recovery
// from the per-shard directory layout.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "io/temp_dir.h"
#include "kv/sharded_store.h"

namespace mlkv {
namespace {

ShardedStoreOptions SmallSharded(const TempDir& dir, uint32_t shard_bits,
                                 ThreadPool* pool = nullptr) {
  ShardedStoreOptions o;
  o.store.path = dir.File("store.log");
  o.store.index_slots = 1024;
  o.store.page_size = 4096;
  o.store.mem_size = 64 * 4096;
  o.shard_bits = shard_bits;
  o.pool = pool;
  o.parallel_min_keys = 1;     // tests want the parallel path even when tiny
  o.chunk_single_shard = true;  // and the opt-in single-shard fan-out
  return o;
}

uint64_t ValueFor(Key key) { return key * 2654435761ull + 7; }

// The ShardOp used throughout: store/read fixed-width uint64 values.
ShardedStore::ShardOp UpsertOp(const std::vector<uint64_t>& values) {
  return [&values](FasterStore* shard, Key key, size_t i, BatchResult* part,
                   size_t pi) {
    part->Record(pi, shard->Upsert(key, &values[i], sizeof(uint64_t)));
  };
}

ShardedStore::ShardOp ReadOp(std::vector<uint64_t>* out) {
  return [out](FasterStore* shard, Key key, size_t i, BatchResult* part,
               size_t pi) {
    part->Record(pi, shard->Read(key, &(*out)[i], sizeof(uint64_t)));
  };
}

TEST(ShardedStoreTest, RoutingMatchesSharedHelper) {
  TempDir dir;
  ShardedStore store;
  ASSERT_TRUE(store.Open(SmallSharded(dir, 3)).ok());
  ASSERT_EQ(store.num_shards(), 8u);
  for (Key k = 0; k < 1000; ++k) {
    EXPECT_EQ(store.ShardIndexOf(k), ShardOf(Hash64(k), 7));
    EXPECT_EQ(store.ShardFor(k), store.shard(store.ShardIndexOf(k)));
  }
}

TEST(ShardedStoreTest, RejectsOversizedShardBits) {
  TempDir dir;
  ShardedStore store;
  EXPECT_TRUE(store.Open(SmallSharded(dir, 9)).IsInvalidArgument());
  EXPECT_TRUE(store.Open(SmallSharded(dir, 8)).ok());
}

// BatchResult sinks must land in caller order no matter how the shuffled
// keys scatter across shards — including codes for missing keys.
TEST(ShardedStoreTest, CallerOrderUnderShuffledKeys) {
  TempDir dir;
  ThreadPool pool(2);
  ShardedStore store;
  ASSERT_TRUE(store.Open(SmallSharded(dir, 2, &pool)).ok());

  constexpr size_t kN = 512;
  std::vector<Key> keys(kN);
  std::vector<uint64_t> values(kN);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = static_cast<Key>(i * 13 + 1);
    values[i] = ValueFor(keys[i]);
  }
  Rng rng(42);
  for (size_t i = kN - 1; i > 0; --i) {
    std::swap(keys[i], keys[rng.Next() % (i + 1)]);
  }
  for (size_t i = 0; i < kN; ++i) values[i] = ValueFor(keys[i]);

  BatchResult put;
  store.MultiExecute(keys, UpsertOp(values), &put);
  ASSERT_TRUE(put.AllOk());
  EXPECT_EQ(put.found, kN);

  // Interleave present and absent keys; absent ones must read NotFound at
  // exactly their caller positions.
  std::vector<Key> probe;
  for (size_t i = 0; i < kN; ++i) {
    probe.push_back(keys[i]);
    if (i % 3 == 0) probe.push_back(keys[i] + 1000000000ull);  // never stored
  }
  std::vector<uint64_t> out(probe.size(), 0);
  BatchResult got;
  store.MultiExecute(probe, ReadOp(&out), &got);
  size_t missing = 0;
  for (size_t i = 0; i < probe.size(); ++i) {
    if (probe[i] >= 1000000000ull) {
      EXPECT_EQ(got.codes[i], Status::Code::kNotFound) << i;
      ++missing;
    } else {
      ASSERT_EQ(got.codes[i], Status::Code::kOk) << i;
      EXPECT_EQ(out[i], ValueFor(probe[i])) << i;
    }
  }
  EXPECT_EQ(got.missing, missing);
  EXPECT_EQ(got.found, probe.size() - missing);
}

// Adversarial skew: every key routes to one shard; the batch must still
// complete correctly (the other sub-batches are empty).
TEST(ShardedStoreTest, AllKeysHashToOneShard) {
  TempDir dir;
  ThreadPool pool(2);
  ShardedStore store;
  ASSERT_TRUE(store.Open(SmallSharded(dir, 2, &pool)).ok());

  const size_t target = 2;
  std::vector<Key> keys;
  for (Key k = 0; keys.size() < 300; ++k) {
    if (store.ShardIndexOf(k) == target) keys.push_back(k);
  }
  std::vector<uint64_t> values(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) values[i] = ValueFor(keys[i]);

  BatchResult put;
  store.MultiExecute(keys, UpsertOp(values), &put);
  ASSERT_TRUE(put.AllOk());

  std::vector<uint64_t> out(keys.size(), 0);
  BatchResult got;
  store.MultiExecute(keys, ReadOp(&out), &got);
  ASSERT_TRUE(got.AllOk());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(out[i], ValueFor(keys[i]));
  }
  // Only the target shard saw traffic.
  for (size_t s = 0; s < store.num_shards(); ++s) {
    EXPECT_EQ(store.shard(s)->stats().upserts, s == target ? keys.size() : 0u);
  }
}

// shard_bits=0 must behave exactly like a bare FasterStore: same results,
// same single-file on-disk layout, no shard directories.
TEST(ShardedStoreTest, ShardBitsZeroMatchesSingleStore) {
  TempDir sharded_dir, plain_dir;
  ShardedStore store;
  ASSERT_TRUE(store.Open(SmallSharded(sharded_dir, 0)).ok());
  ASSERT_EQ(store.num_shards(), 1u);

  FasterStore plain;
  {
    FasterOptions o = SmallSharded(plain_dir, 0).store;
    o.path = plain_dir.File("store.log");
    ASSERT_TRUE(plain.Open(o).ok());
  }

  constexpr size_t kN = 400;
  std::vector<Key> keys(kN);
  std::vector<uint64_t> values(kN);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = static_cast<Key>(i * 7);
    values[i] = ValueFor(keys[i]);
    ASSERT_TRUE(plain.Upsert(keys[i], &values[i], sizeof(uint64_t)).ok());
  }
  BatchResult put;
  store.MultiExecute(keys, UpsertOp(values), &put);
  ASSERT_TRUE(put.AllOk());

  for (size_t i = 0; i < kN; ++i) {
    uint64_t a = 0, b = 0;
    ASSERT_TRUE(store.Read(keys[i], &a, sizeof(a)).ok());
    ASSERT_TRUE(plain.Read(keys[i], &b, sizeof(b)).ok());
    EXPECT_EQ(a, b);
  }

  // Identical telemetry and layout: one log file at the configured path,
  // no shard-NN directories anywhere.
  EXPECT_EQ(store.stats().inserts, plain.stats().inserts);
  EXPECT_EQ(store.log_tail_total(), plain.log().tail());
  EXPECT_TRUE(std::filesystem::exists(sharded_dir.path() + "/store.log"));
  for (const auto& entry :
       std::filesystem::directory_iterator(sharded_dir.path())) {
    EXPECT_FALSE(entry.is_directory()) << entry.path();
  }

  // Checkpoints land at the plain prefix too.
  ASSERT_TRUE(store.Checkpoint(sharded_dir.path() + "/c").ok());
  EXPECT_TRUE(std::filesystem::exists(sharded_dir.path() + "/c.meta"));
  EXPECT_TRUE(std::filesystem::exists(sharded_dir.path() + "/c.idx"));
}

// Budget split: each shard receives mem_size >> bits and index_slots >>
// bits (its HashIndex then rounds up to a power of two).
TEST(ShardedStoreTest, SplitsBudgetsAcrossShards) {
  TempDir dir;
  ShardedStore store;
  ShardedStoreOptions o = SmallSharded(dir, 2);
  o.store.index_slots = 4096;
  ASSERT_TRUE(store.Open(o).ok());
  for (size_t s = 0; s < store.num_shards(); ++s) {
    EXPECT_EQ(store.shard(s)->index_slots(), 1024u);
    EXPECT_EQ(store.shard(s)->options().mem_size, o.store.mem_size / 4);
  }
  EXPECT_EQ(store.index_slots(), 4096u);
}

TEST(ShardedStoreTest, RecoversFromPerShardCheckpointLayout) {
  TempDir dir;
  const std::string prefix = dir.path() + "/ckpt";
  constexpr size_t kN = 600;
  std::vector<Key> keys(kN);
  std::vector<uint64_t> values(kN);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = static_cast<Key>(i * 31 + 5);
    values[i] = ValueFor(keys[i]);
  }
  {
    ShardedStore store;
    ASSERT_TRUE(store.Open(SmallSharded(dir, 2)).ok());
    BatchResult put;
    store.MultiExecute(keys, UpsertOp(values), &put);
    ASSERT_TRUE(put.AllOk());
    ASSERT_TRUE(store.Checkpoint(prefix).ok());
  }
  // Each shard checkpointed under its own directory.
  for (uint32_t s = 0; s < 4; ++s) {
    const std::string p = ShardedStore::ShardFilePath(prefix, s, 2);
    EXPECT_TRUE(std::filesystem::exists(p + ".meta")) << p;
    EXPECT_TRUE(std::filesystem::exists(p + ".idx")) << p;
  }
  ShardedStoreOptions probe;
  probe.shard_bits = 2;
  ASSERT_TRUE(ShardedStore::CheckpointExists(probe, prefix));

  ShardedStore recovered;
  ASSERT_TRUE(recovered.Recover(SmallSharded(dir, 2), prefix).ok());
  std::vector<uint64_t> out(kN, 0);
  BatchResult got;
  recovered.MultiExecute(keys, ReadOp(&out), &got);
  ASSERT_TRUE(got.AllOk());
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], values[i]);
}

// A single-shard store still fans large batches out — hash-partitioned
// over the pool — so shard_bits=0 keeps intra-batch parallelism; every
// occurrence of one key lands in the same sub-batch in caller order, so
// duplicate-key writes keep their last-occurrence-wins resolution.
TEST(ShardedStoreTest, SingleShardChunksBatchesAndKeepsDuplicateOrder) {
  TempDir dir;
  ThreadPool pool(3);
  ShardedStore store;
  ASSERT_TRUE(store.Open(SmallSharded(dir, 0, &pool)).ok());

  constexpr size_t kN = 512;
  std::vector<Key> keys(kN);
  std::vector<uint64_t> values(kN);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = static_cast<Key>(i);
    values[i] = ValueFor(keys[i]);
  }
  BatchResult put;
  store.MultiExecute(keys, UpsertOp(values), &put);
  ASSERT_TRUE(put.AllOk());
  std::vector<uint64_t> out(kN, 0);
  BatchResult got;
  store.MultiExecute(keys, ReadOp(&out), &got);
  ASSERT_TRUE(got.AllOk());
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], values[i]);

  // Every occurrence writes the same key: the batch must resolve to the
  // LAST occurrence's value (one bucket owns the key; never split).
  std::vector<Key> dupes(kN, Key{7});
  std::vector<uint64_t> dupe_values(kN);
  for (size_t i = 0; i < kN; ++i) dupe_values[i] = i;
  store.MultiExecute(dupes, UpsertOp(dupe_values), &put);
  ASSERT_TRUE(put.AllOk());
  uint64_t v = 0;
  ASSERT_TRUE(store.Read(Key{7}, &v, sizeof(v)).ok());
  EXPECT_EQ(v, kN - 1);
}

// A partial sharded checkpoint (some shards written, no commit marker) is
// not a checkpoint: CheckpointExists must stay false until the marker
// lands, so recovery never sees a half-written set of shard files.
TEST(ShardedStoreTest, PartialCheckpointIsNotACheckpoint) {
  TempDir dir;
  const std::string prefix = dir.path() + "/ckpt";
  ShardedStore store;
  ASSERT_TRUE(store.Open(SmallSharded(dir, 2)).ok());
  const uint64_t v = 5;
  ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());
  ShardedStoreOptions probe;
  probe.shard_bits = 2;
  EXPECT_FALSE(ShardedStore::CheckpointExists(probe, prefix));
  ASSERT_TRUE(store.Checkpoint(prefix).ok());
  EXPECT_TRUE(ShardedStore::CheckpointExists(probe, prefix));
  // Simulate a crash that wrote shard files but not the commit marker.
  std::filesystem::remove(prefix + ".shards");
  EXPECT_FALSE(ShardedStore::CheckpointExists(probe, prefix));
}

// stop_on_error: a single-shard store stops exactly at the first problem
// (the fail-fast contract of the sink-less span APIs).
TEST(ShardedStoreTest, StopOnErrorHaltsSubBatch) {
  TempDir dir;
  ShardedStore store;
  ASSERT_TRUE(store.Open(SmallSharded(dir, 0)).ok());
  const uint64_t v = 1;
  ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());
  ASSERT_TRUE(store.Upsert(2, &v, sizeof(v)).ok());
  std::vector<Key> keys = {1, 999, 2};  // 999 was never stored
  std::vector<uint64_t> out(keys.size(), 0);
  BatchResult r;
  store.MultiExecute(keys, ReadOp(&out), &r, /*stop_on_error=*/true);
  EXPECT_EQ(r.codes[0], Status::Code::kOk);
  EXPECT_EQ(r.codes[1], Status::Code::kNotFound);
  // Key 2 was never attempted: the store's read count stops at two.
  EXPECT_EQ(store.stats().reads, 2u);
}

}  // namespace
}  // namespace mlkv
