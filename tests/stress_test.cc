// Whole-stack concurrency stress: trainers, prefetchers, evaluators, and
// the garbage collector running against one table at once. These tests are
// about crash-freedom and protocol invariants under contention, not
// throughput; sizes are chosen to finish in seconds while still forcing
// page rolls, evictions, RCU updates, promotions, and GC.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "backend/delayed_backend.h"
#include "backend/kv_backend.h"
#include "cluster/cluster_backend.h"
#include "cluster/cluster_map.h"
#include "cluster/replicator.h"
#include "common/random.h"
#include "io/temp_dir.h"
#include "kv/faster_store.h"
#include "kv/log_iterator.h"
#include "mlkv/mlkv.h"
#include "net/kv_server.h"
#include "net/remote_backend.h"
#include "obs/metrics.h"

namespace mlkv {
namespace {

// --------------------------------------------------------- store level --

// Five mutator kinds (upsert, rmw, delete+reinsert, promote, compact) race
// on a shared store; each key has one owning writer thread recording the
// last committed version, verified at the end.
TEST(StoreStressTest, MixedOpsWithCompactorAndPromoter) {
  TempDir dir;
  FasterOptions o;
  o.path = dir.File("stress.log");
  o.index_slots = 4096;
  o.page_size = 4096;
  o.mem_size = 16 * 4096;
  FasterStore store;
  ASSERT_TRUE(store.Open(o).ok());

  constexpr int kWriters = 3;
  constexpr int kKeysPerWriter = 80;
  constexpr int kOpsPerWriter = 4000;
  std::vector<std::vector<uint64_t>> committed(
      kWriters, std::vector<uint64_t>(kKeysPerWriter, 0));
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(99 + w);
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const int slot = static_cast<int>(rng.Next() % kKeysPerWriter);
        const Key key = static_cast<Key>(w) * kKeysPerWriter + slot;
        const uint64_t version = committed[w][slot] + 1;
        const double roll = rng.NextDouble();
        if (roll < 0.55) {
          // Upsert with occasional size change (forces RCU).
          char buf[96];
          std::memset(buf, 0, sizeof(buf));
          std::memcpy(buf, &version, sizeof(version));
          const uint32_t size = 48 + (version % 3) * 16;
          ASSERT_TRUE(store.Upsert(key, buf, size).ok());
          committed[w][slot] = version;
        } else if (roll < 0.85) {
          // Rmw bumping the version in place.
          ASSERT_TRUE(store
                          .Rmw(key, 48,
                               [version](char* v, uint32_t, bool) {
                                 std::memcpy(v, &version, sizeof(version));
                               })
                          .ok());
          committed[w][slot] = version;
        } else {
          // Delete then reinsert (tombstone churn).
          store.Delete(key).ok();  // NotFound fine on fresh keys
          char buf[48];
          std::memset(buf, 0, sizeof(buf));
          std::memcpy(buf, &version, sizeof(version));
          ASSERT_TRUE(store.Upsert(key, buf, sizeof(buf)).ok());
          committed[w][slot] = version;
        }
      }
    });
  }
  threads.emplace_back([&] {  // compactor
    while (!stop.load(std::memory_order_acquire)) {
      Status s = store.Compact(store.log().read_only_address(), nullptr);
      ASSERT_TRUE(s.ok() || s.IsBusy()) << s.ToString();
    }
  });
  threads.emplace_back([&] {  // promoter (lookahead's storage half)
    Rng rng(4242);
    while (!stop.load(std::memory_order_acquire)) {
      const Key key = rng.Next() % (kWriters * kKeysPerWriter);
      Status s = store.Promote(key);
      ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
    }
  });
  threads.emplace_back([&] {  // reader (untracked peeks)
    Rng rng(1717);
    char buf[96];
    while (!stop.load(std::memory_order_acquire)) {
      const Key key = rng.Next() % (kWriters * kKeysPerWriter);
      Status s = store.Peek(key, buf, sizeof(buf));
      ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
    }
  });
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  for (int w = 0; w < kWriters; ++w) {
    for (int slot = 0; slot < kKeysPerWriter; ++slot) {
      const Key key = static_cast<Key>(w) * kKeysPerWriter + slot;
      if (committed[w][slot] == 0) continue;
      std::string out;
      ASSERT_TRUE(store.Read(key, &out).ok()) << "key " << key;
      uint64_t version = 0;
      std::memcpy(&version, out.data(), sizeof(version));
      EXPECT_EQ(version, committed[w][slot]) << "key " << key;
    }
  }
  // The live scan and point reads agree on the key population.
  uint64_t live = 0;
  for (LiveLogIterator it(&store); it.Valid(); it.Next()) ++live;
  uint64_t readable = 0;
  std::string out;
  for (Key key = 0; key < kWriters * kKeysPerWriter; ++key) {
    if (store.Read(key, &out).ok()) ++readable;
  }
  EXPECT_EQ(live, readable);
}

// --------------------------------------------------------- table level --

// A full training-shaped pipeline: worker threads own disjoint rows and run
// GetOrInit -> ApplyGradients(fused adagrad) while a prefetch thread drives
// both Lookahead destinations and a maintenance thread compacts. Rows must
// end exactly at the value the owner's deterministic gradient sequence
// produces (per-record Rmw atomicity).
TEST(TableStressTest, TrainersPrefetchersAndGc) {
  TempDir dir;
  MlkvOptions opts;
  opts.dir = dir.path() + "/db";
  opts.index_slots = 4096;
  opts.page_size = 4096;
  opts.mem_size = 24 * 4096;
  opts.lookahead_threads = 2;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
  EmbeddingTable* table = nullptr;
  OptimizerConfig sgd;  // stateless keeps the expected value analytic
  sgd.kind = OptimizerKind::kSgd;
  sgd.lr = 0.5f;
  ASSERT_TRUE(db->OpenTable("t", 8, kAspBound, &table, sgd).ok());

  constexpr int kWorkers = 3;
  constexpr int kRowsPerWorker = 400;  // 1200 rows x 64 B > the 96 KiB buffer
  constexpr int kSteps = 150;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      std::vector<float> zero(8, 0.0f), grad(8);
      // Seed rows to zero so the final value is analytic.
      for (int rr = 0; rr < kRowsPerWorker; ++rr) {
        const Key row = static_cast<Key>(w) * kRowsPerWorker + rr;
        ASSERT_TRUE(table->Put({&row, 1}, zero.data()).ok());
      }
      for (int step = 1; step <= kSteps; ++step) {
        for (int rr = 0; rr < kRowsPerWorker; ++rr) {
          const Key row = static_cast<Key>(w) * kRowsPerWorker + rr;
          for (int d = 0; d < 8; ++d) {
            grad[d] = (d % 2 == 0 ? 1.0f : -1.0f) *
                      static_cast<float>(1 + (step % 2));
          }
          ASSERT_TRUE(table->ApplyGradients({&row, 1}, grad.data()).ok());
        }
      }
    });
  }
  threads.emplace_back([&] {  // prefetcher
    EmbeddingCache cache(256, 8);
    Rng rng(5);
    std::vector<Key> batch(32);
    while (!stop.load(std::memory_order_acquire)) {
      for (auto& k : batch) k = rng.Next() % (kWorkers * kRowsPerWorker);
      ASSERT_TRUE(table->Lookahead(batch).ok());
      ASSERT_TRUE(table->Lookahead(
                          batch,
                          EmbeddingTable::LookaheadDest::kApplicationCache,
                          &cache)
                      .ok());
      // Pace the flood: the queue stays busy without starving the workers
      // (under TSan's serialized scheduler an unpaced submit loop can
      // livelock against CompactStorage's WaitLookahead spin).
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    table->WaitLookahead();
  });
  threads.emplace_back([&] {  // maintenance
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(table->CompactStorage(64 * 4096).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int w = 0; w < kWorkers; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t i = kWorkers; i < threads.size(); ++i) threads[i].join();

  // Expected value: sum over steps of -lr*grad; grads alternate magnitude
  // 2,1,2,1,... starting at step 1 -> per-dim total = -lr * sign * total_mag.
  float total_mag = 0;
  for (int step = 1; step <= kSteps; ++step) {
    total_mag += static_cast<float>(1 + (step % 2));
  }
  std::vector<float> v(8);
  for (Key row = 0; row < kWorkers * kRowsPerWorker; ++row) {
    ASSERT_TRUE(table->Get({&row, 1}, v.data()).ok()) << "row " << row;
    for (int d = 0; d < 8; ++d) {
      const float expect =
          -(0.5f) * (d % 2 == 0 ? 1.0f : -1.0f) * total_mag;
      ASSERT_NEAR(v[d], expect, 1e-3f) << "row " << row << " dim " << d;
    }
  }
}

// SSP pipeline at a tight bound with paired Get/Put across threads sharing
// all keys: the protocol must neither deadlock nor lose updates.
TEST(TableStressTest, SharedKeysBoundedPipeline) {
  TempDir dir;
  MlkvOptions opts;
  opts.dir = dir.path() + "/db";
  opts.index_slots = 1024;
  opts.page_size = 4096;
  opts.mem_size = 16 * 4096;
  opts.busy_spin_limit = 1 << 14;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
  EmbeddingTable* table = nullptr;
  ASSERT_TRUE(db->OpenTable("t", 4, /*staleness_bound=*/4, &table).ok());

  constexpr Key kRows = 64;
  std::vector<float> zero(4, 0.0f);
  for (Key row = 0; row < kRows; ++row) {
    ASSERT_TRUE(table->Put({&row, 1}, zero.data()).ok());
  }
  std::atomic<uint64_t> applied{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      Rng rng(31 + w);
      std::vector<float> v(4), g(4, 1.0f);
      for (int i = 0; i < 2000; ++i) {
        const Key row = rng.Next() % kRows;
        Status s = table->Get({&row, 1}, v.data());
        if (s.IsBusy()) continue;  // bounded abort: retry another row
        ASSERT_TRUE(s.ok()) << s.ToString();
        // Matching Put completes the protocol round for this Get.
        ASSERT_TRUE(table->ApplyGradients({&row, 1}, g.data(), 0.001f).ok());
        applied.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_GT(applied.load(), 0u);
  // Every row's value reflects exactly the applied updates in total: sum of
  // all dims across rows == -0.001 * applied * 4 dims.
  double total = 0;
  std::vector<float> v(4);
  for (Key row = 0; row < kRows; ++row) {
    ASSERT_TRUE(table->Get({&row, 1}, v.data()).ok());
    ASSERT_TRUE(table->Put({&row, 1}, v.data()).ok());
    for (int d = 0; d < 4; ++d) total += v[d];
  }
  EXPECT_NEAR(total, -0.001 * static_cast<double>(applied.load()) * 4,
              0.05);
}

// ------------------------------------------------------- backend level --

// Concurrent batched traffic over the KvBackend seam with intra-batch
// fan-out enabled: several caller threads issue overlapping MultiPut /
// MultiGet / MultiApplyGradient batches while each backend spreads every
// batch across its own ThreadPool. This is the race surface the batch API
// introduced (chunked writers + shared engine state); run under TSan in CI.
TEST(BackendBatchStressTest, ConcurrentParallelBatches) {
  constexpr uint32_t kDim = 8;
  constexpr int kCallers = 4;
  constexpr int kRounds = 40;
  constexpr size_t kBatch = 256;
  constexpr Key kKeySpace = 512;  // overlap guaranteed

  for (const BackendKind kind :
       {BackendKind::kFaster, BackendKind::kLsm, BackendKind::kBtree}) {
    TempDir dir;
    BackendConfig cfg;
    cfg.dir = dir.File("b");
    cfg.dim = kDim;
    cfg.buffer_bytes = 2ull << 20;
    cfg.batch_threads = 3;
    cfg.batch_min_chunk = 16;
    std::unique_ptr<KvBackend> backend;
    ASSERT_TRUE(MakeBackend(kind, cfg, &backend).ok());

    std::atomic<int> hard_failures{0};
    std::vector<std::thread> callers;
    for (int c = 0; c < kCallers; ++c) {
      callers.emplace_back([&, c] {
        Rng rng(31 + c);
        std::vector<Key> keys(kBatch);
        std::vector<float> values(kBatch * kDim);
        std::vector<float> out(kBatch * kDim);
        for (int round = 0; round < kRounds; ++round) {
          for (auto& k : keys) k = rng.Next() % kKeySpace;
          for (auto& v : values) v = static_cast<float>(c);
          const BatchResult put = backend->MultiPut(keys, values.data());
          const BatchResult got = backend->MultiGet(keys, out.data());
          const BatchResult applied =
              backend->MultiApplyGradient(keys, values.data(), 0.001f);
          if (put.failed + got.failed + applied.failed > 0) {
            hard_failures.fetch_add(1);
          }
          // Every value read must be finite (no torn float reads).
          for (const float v : out) {
            if (!std::isfinite(v)) hard_failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : callers) t.join();
    EXPECT_EQ(hard_failures.load(), 0) << BackendKindName(kind);
  }
}

// Parallel batches across a sharded MLKV table: several trainer-shaped
// caller threads issue large span calls concurrently while each call's
// per-shard sub-batches fan out onto the shared lookahead pool — the race
// surface the sharded scatter/gather introduced (pool workers + callers
// executing different shards' sub-batches of overlapping batches at once).
// Disjoint row ownership makes the final values analytic; run under TSan
// in CI.
TEST(ShardedBatchStressTest, ParallelSpanCallsAcrossShards) {
  TempDir dir;
  MlkvOptions opts;
  opts.dir = dir.File("db");
  opts.index_slots = 4096;
  opts.page_size = 4096;
  opts.mem_size = 64 * 4096;
  opts.shard_bits = 2;
  opts.lookahead_threads = 3;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
  EmbeddingTable* table = nullptr;
  ASSERT_TRUE(db->OpenTable("t", 8, kAspBound, &table).ok());
  ASSERT_EQ(table->store()->num_shards(), 4u);

  constexpr int kWorkers = 4;
  constexpr int kRowsPerWorker = 256;
  constexpr int kSteps = 60;
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      std::vector<Key> rows(kRowsPerWorker);
      for (int r = 0; r < kRowsPerWorker; ++r) {
        rows[r] = static_cast<Key>(w) * kRowsPerWorker + r;
      }
      std::vector<float> zero(kRowsPerWorker * 8, 0.0f);
      std::vector<float> grad(kRowsPerWorker * 8, 1.0f);
      std::vector<float> out(kRowsPerWorker * 8);
      BatchResult r;
      table->Put(rows, zero.data(), &r);
      ASSERT_TRUE(r.AllOk());
      for (int step = 0; step < kSteps; ++step) {
        table->ApplyGradients(rows, grad.data(), 0.5f, &r);
        ASSERT_TRUE(r.AllOk());
        if (step % 8 == 0) {
          // Interleave prefetch traffic on the same pool the scatter uses.
          table->Lookahead(rows).ok();
        }
      }
      table->Get(rows, out.data(), &r);
      ASSERT_TRUE(r.AllOk());
      for (int i = 0; i < kRowsPerWorker * 8; ++i) {
        ASSERT_FLOAT_EQ(out[i], -0.5f * kSteps) << "row-elem " << i;
      }
    });
  }
  for (auto& t : workers) t.join();
  table->WaitLookahead();
}

// The pending-read pipeline under contention: caller threads issue cold
// batched gets through the shared AsyncIoEngine (waves submitting from
// several threads at once, completions running on each caller) while
// writers RCU the same keys, prefetchers promote them, and a maintenance
// thread compacts — the full set of actors that can move a record while
// its image is in flight. Values are self-describing so every served row
// is checkable regardless of which version the read linearized against.
// Run under TSan in CI.
TEST(AsyncReadStressTest, ColdWavesVersusWritersAndCompaction) {
  TempDir dir;
  MlkvOptions opts;
  opts.dir = dir.File("db");
  opts.index_slots = 4096;
  opts.page_size = 4096;
  opts.mem_size = 16 * 4096;  // tiny: most of the key space lives on disk
  opts.shard_bits = 2;
  opts.lookahead_threads = 2;
  opts.io_mode = IoMode::kAsync;
  opts.io_threads = 3;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
  EmbeddingTable* table = nullptr;
  ASSERT_TRUE(db->OpenTable("t", 8, kAspBound, &table).ok());

  constexpr uint64_t kKeys = 3000;
  constexpr int kReaders = 3;
  constexpr int kSteps = 40;
  {
    std::vector<Key> keys(kKeys);
    std::vector<float> rows(kKeys * 8);
    for (uint64_t k = 0; k < kKeys; ++k) {
      keys[k] = k;
      for (int d = 0; d < 8; ++d) {
        rows[k * 8 + d] = static_cast<float>(k);
      }
    }
    BatchResult r;
    table->Put(keys, rows.data(), &r);
    ASSERT_TRUE(r.AllOk());
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kReaders; ++w) {
    threads.emplace_back([&, w] {
      std::vector<Key> batch(128);
      std::vector<float> out(batch.size() * 8);
      BatchResult r;
      for (int step = 0; step < kSteps; ++step) {
        for (size_t i = 0; i < batch.size(); ++i) {
          batch[i] = (static_cast<Key>(w) * 7919 + step * 131 + i * 17) %
                     kKeys;
        }
        table->Get(batch, out.data(), &r);
        for (size_t i = 0; i < batch.size(); ++i) {
          if (r.codes[i] != Status::Code::kOk) continue;
          // Every version of key k holds either k (initial) or k + 1000
          // (writer update) in every lane.
          const float v = out[i * 8];
          ASSERT_TRUE(v == static_cast<float>(batch[i]) ||
                      v == static_cast<float>(batch[i] + 1000))
              << "key " << batch[i] << " -> " << v;
          for (int d = 1; d < 8; ++d) {
            ASSERT_FLOAT_EQ(out[i * 8 + d], v) << "torn row " << batch[i];
          }
        }
        if (step % 8 == 3) table->Lookahead(batch).ok();
      }
    });
  }
  threads.emplace_back([&] {  // writer: RCU updates racing the waves
    std::vector<float> row(8);
    for (int step = 0; step < kSteps * 4 && !stop.load(); ++step) {
      const Key k = static_cast<Key>(step * 37) % kKeys;
      for (int d = 0; d < 8; ++d) row[d] = static_cast<float>(k + 1000);
      BatchResult r;
      table->Put({&k, 1}, row.data(), &r);
    }
  });
  threads.emplace_back([&] {  // maintenance: move the begin boundary
    for (int i = 0; i < 6 && !stop.load(); ++i) {
      table->CompactStorage().ok();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  for (size_t t = 0; t < threads.size() - 2; ++t) threads[t].join();
  stop.store(true);
  threads[threads.size() - 2].join();
  threads.back().join();
  table->WaitLookahead();
  EXPECT_GT(table->store()->stats().async_reads_submitted, 0u);
}

// ------------------------------------------- group durability stress --

// Writers hammer one kGroup store — in-place updates, RCU size changes —
// while every thread takes its own per-batch Persist() ticket, so
// concurrent committers pile onto the GroupCommitter's shared fsyncs and
// flush waves race in-flight appends. After the threads join, one final
// Persist marks everything durable; a simulated crash (no shutdown
// checkpoint) plus Recover() must then serve every writer's last version.
TEST(GroupDurabilityStressTest, ConcurrentWritersShareGroupCommits) {
  TempDir dir;
  FasterOptions o;
  o.path = dir.File("group.log");
  o.index_slots = 4096;
  o.page_size = 4096;
  o.mem_size = 32 * 4096;
  o.mutable_fraction = 0.5;
  o.durability_mode = DurabilityMode::kGroup;
  o.group_commit_window_us = 100;
  const std::string prefix = dir.File("ckpt");

  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 48;
  constexpr int kBatches = 40;
  constexpr int kOpsPerBatch = 12;
  // Value size flips every third version, so runs of same-size versions
  // update in place and the flips force RCU appends.
  const auto size_for = [](uint64_t version) -> uint32_t {
    return (version / 3) % 2 == 0 ? 24 : 48;
  };
  const auto key_for = [](int w, int slot) -> Key {
    return 1000 + static_cast<Key>(w) * kKeysPerWriter + slot;
  };
  std::vector<std::vector<uint64_t>> last(
      kWriters, std::vector<uint64_t>(kKeysPerWriter, 1));
  uint64_t group_commits = 0;
  {
    FasterStore store;
    ASSERT_TRUE(store.Open(o).ok());
    // Seed version 1 of every key and checkpoint, so recovery exercises
    // base restore plus group-committed tail replay.
    for (int w = 0; w < kWriters; ++w) {
      for (int s = 0; s < kKeysPerWriter; ++s) {
        char buf[48] = {};
        const uint64_t version = 1;
        std::memcpy(buf, &version, sizeof(version));
        ASSERT_TRUE(
            store.Upsert(key_for(w, s), buf, size_for(version)).ok());
      }
    }
    ASSERT_TRUE(store.Checkpoint(prefix).ok());

    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        Rng rng(7 + w);
        for (int b = 0; b < kBatches && !failed.load(); ++b) {
          for (int i = 0; i < kOpsPerBatch; ++i) {
            const int slot = static_cast<int>(rng.Next() % kKeysPerWriter);
            const uint64_t version = ++last[w][slot];
            char buf[48] = {};
            std::memcpy(buf, &version, sizeof(version));
            if (!store.Upsert(key_for(w, slot), buf, size_for(version))
                     .ok()) {
              failed.store(true);
              break;
            }
          }
          if (!store.Persist().ok()) failed.store(true);
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_FALSE(failed.load());
    ASSERT_TRUE(store.Persist().ok());  // quiesced: covers every write
    group_commits = store.stats().group_commits;
  }  // crash: no shutdown-time checkpoint

  // With 4 threads parking ~160 tickets on 100 us windows, fsync sharing
  // is statistically certain; its absence means the committer broke.
  EXPECT_GT(group_commits, 0u);

  FasterStore store;
  ASSERT_TRUE(store.Recover(o, prefix).ok());
  for (int w = 0; w < kWriters; ++w) {
    for (int s = 0; s < kKeysPerWriter; ++s) {
      std::string out;
      ASSERT_TRUE(store.Read(key_for(w, s), &out).ok()) << w << "/" << s;
      const uint64_t want = last[w][s];
      ASSERT_EQ(out.size(), size_for(want)) << w << "/" << s;
      uint64_t got = 0;
      std::memcpy(&got, out.data(), sizeof(got));
      EXPECT_EQ(got, want) << w << "/" << s;
    }
  }
}

// ---------------------------------------------------------- replication --

// Writers hammer a primary KvServer over the wire while a replica tails
// its committed-update feed concurrently — the TSan target for the whole
// shipping path (Persist + cursor on the primary, Upsert races on the
// replica). After the writers join, the replica must catch up and hold a
// byte-identical copy of every key.
TEST(ReplicationStressTest, ConcurrentWritersWithTailingReplica) {
  TempDir dir;
  BackendConfig cfg;
  cfg.dir = dir.File("primary");
  cfg.dim = 8;
  cfg.buffer_bytes = 4ull << 20;
  cfg.staleness_bound = UINT32_MAX - 1;
  cfg.shard_bits = 2;
  std::unique_ptr<KvBackend> engine;
  ASSERT_TRUE(MakeBackend(BackendKind::kFaster, cfg, &engine).ok());
  net::KvServerOptions so;
  so.num_workers = 6;
  net::KvServer primary(std::move(engine), so);
  ASSERT_TRUE(primary.Start().ok());

  cfg.dir = dir.File("replica");
  cfg.shard_bits = 1;  // layouts may differ: replication routes by key
  std::unique_ptr<KvBackend> replica;
  ASSERT_TRUE(MakeBackend(BackendKind::kFaster, cfg, &replica).ok());

  cluster::ReplicatorOptions ropts;
  ropts.primary_addr = primary.addr();
  ropts.poll_interval_ms = 1;  // tail aggressively while writers run
  cluster::Replicator rep(replica.get(), ropts);
  ASSERT_TRUE(rep.Start().ok());

  constexpr int kWriters = 3;
  constexpr int kKeysPerWriter = 200;
  constexpr int kRounds = 20;
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      net::RemoteBackendOptions o;
      o.addr = primary.addr();
      o.pool_size = 1;
      std::unique_ptr<KvBackend> client;
      if (!net::RemoteBackend::Connect(o, &client).ok()) {
        failures.fetch_add(1);
        return;
      }
      std::vector<Key> keys(kKeysPerWriter);
      std::vector<float> values(kKeysPerWriter * 8);
      for (int r = 0; r < kRounds; ++r) {
        for (int i = 0; i < kKeysPerWriter; ++i) {
          keys[i] = static_cast<Key>(t) * 100000 + i;
          for (int d = 0; d < 8; ++d) {
            values[i * 8 + d] = static_cast<float>(t * 1000 + r * 8 + d);
          }
        }
        if (!client->MultiPut(keys, values.data()).AllOk()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  ASSERT_EQ(failures.load(), 0);

  ASSERT_TRUE(rep.WaitCaughtUp(60000));
  rep.Stop();
  const cluster::ReplicationProgress progress = rep.progress();
  EXPECT_GE(progress.replicated_records,
            static_cast<uint64_t>(kWriters) * kKeysPerWriter);
  EXPECT_EQ(progress.replica_lag_records, 0u);
  EXPECT_EQ(progress.apply_failures, 0u);

  // Final audit: the replica serves the primary's bytes for every key.
  KvBackend* primary_engine = primary.backend();
  std::vector<float> want(8), got(8);
  for (int t = 0; t < kWriters; ++t) {
    for (int i = 0; i < kKeysPerWriter; ++i) {
      const Key k = static_cast<Key>(t) * 100000 + i;
      ASSERT_TRUE(primary_engine->PeekEmbedding(k, want.data()).ok()) << k;
      ASSERT_TRUE(replica->PeekEmbedding(k, got.data()).ok()) << k;
      ASSERT_EQ(std::memcmp(want.data(), got.data(), 8 * sizeof(float)), 0)
          << "key " << k;
    }
  }
  primary.Stop();
}

// ------------------------------------------------------ cluster level --

// Hedged reads under contention, for TSan: a mutual-replica pair (each
// server primary of one partition, replica of the other, identically
// preloaded) where one server stalls every Nth read, hammered by client
// threads with hedging, auto hedge delay, and hot-key replication all on.
// The caller returns on the first usable response while the loser finishes
// against shared state in the background — exactly the overlap a data race
// would live in. Asserts are correctness (every batch serves the written
// bytes) plus liveness of the hedge counters.
TEST(ClusterHedgeStressTest, ConcurrentHedgedReadsAgainstStraggler) {
  TempDir dir;
  constexpr size_t kRows = 256;
  std::vector<Key> keys(kRows);
  std::vector<float> values(kRows * 8);
  for (size_t i = 0; i < kRows; ++i) {
    keys[i] = i + 1;
    for (int d = 0; d < 8; ++d) values[i * 8 + d] = i * 2.0f + d;
  }
  net::KvServer* servers[2] = {nullptr, nullptr};
  std::unique_ptr<net::KvServer> owned[2];
  DelayedBackend* slow = nullptr;
  for (int i = 0; i < 2; ++i) {
    BackendConfig cfg;
    cfg.dir = dir.File(i == 0 ? "hs0" : "hs1");
    cfg.dim = 8;
    cfg.buffer_bytes = 4ull << 20;
    cfg.staleness_bound = UINT32_MAX - 1;
    cfg.shard_bits = 1;
    std::unique_ptr<KvBackend> engine;
    ASSERT_TRUE(MakeBackend(BackendKind::kFaster, cfg, &engine).ok());
    ASSERT_TRUE(engine->MultiPut(keys, values.data()).AllOk());
    if (i == 0) {
      DelayedBackend::Options d;
      d.delay_us = 2000;
      d.every_nth = 16;  // intermittent straggler
      auto dec = std::make_unique<DelayedBackend>(std::move(engine), d);
      slow = dec.get();
      engine = std::move(dec);
    }
    net::KvServerOptions so;
    so.num_workers = 6;
    owned[i] = std::make_unique<net::KvServer>(std::move(engine), so);
    ASSERT_TRUE(owned[i]->Start().ok());
    servers[i] = owned[i].get();
  }
  auto map = std::make_shared<cluster::ClusterMap>();
  ASSERT_TRUE(cluster::BuildClusterMap(
                  {servers[0]->addr(), servers[1]->addr()},
                  {servers[1]->addr(), servers[0]->addr()}, 1,
                  cluster::ReadPreference::kPrimary, 1, map.get())
                  .ok());
  servers[0]->UpdateClusterMap(map, 0);
  servers[1]->UpdateClusterMap(map, 1);

  cluster::ClusterBackendOptions co;
  co.endpoints = {servers[0]->addr(), servers[1]->addr()};
  co.hedge_us = kHedgeAuto;  // per-endpoint p99 hedge delay
  co.hot_replicate_top_k = 8;
  co.hot_refresh_interval = 256;
  std::unique_ptr<cluster::ClusterBackend> client;
  ASSERT_TRUE(cluster::ClusterBackend::Connect(co, &client).ok());

  constexpr int kThreads = 4;
  constexpr int kBatches = 200;
  constexpr size_t kBatch = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(77 + t);
      std::vector<Key> batch(kBatch);
      std::vector<float> out(kBatch * 8);
      MultiGetOptions o;
      o.untracked = true;
      o.init_missing = false;
      for (int b = 0; b < kBatches; ++b) {
        for (auto& k : batch) {
          // Zipf-ish: half the reads land on the first 8 keys.
          k = (rng.Next() & 1) ? keys[rng.Next() % 8]
                               : keys[rng.Next() % kRows];
        }
        const BatchResult r = client->MultiGet(batch, out.data(), o);
        if (!r.AllOk()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < kBatch; ++i) {
          const size_t row = static_cast<size_t>(batch[i] - 1);
          if (out[i * 8] != values[row * 8] ||
              out[i * 8 + 7] != values[row * 8 + 7]) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(slow->delays(), 0u);
  // The straggler script fired; with an auto delay hedges are best-effort,
  // so only assert the accounting invariant, not a fixed count.
  const cluster::HedgeStats hs = client->hedge_stats();
  EXPECT_GE(hs.issued, hs.wins);
  client.reset();
  servers[0]->Stop();
  servers[1]->Stop();
}

// ------------------------------------------------------ metrics level --

// Writers hammer native cells (including lazy registration of new labeled
// cells) while scrapers render the exposition and a toggler flips the
// global enable switch — the registry's lock-free record path versus its
// mutex-guarded registration and scrape paths, for TSan.
TEST(MetricsRegistryStressTest, ConcurrentRecordRegisterAndScrape) {
  obs::MetricsRegistry reg;
  obs::MetricFamily* ops = reg.CounterFamily("ops_total", "Ops.", {"shard"});
  obs::MetricFamily* lat =
      reg.HistogramFamily("lat_seconds", "Latency.", {"op"});
  obs::Gauge* depth = reg.GaugeFamily("depth", "Depth.")->GetGauge();
  const uint64_t collector =
      reg.AddCollector([](obs::MetricsSink* sink) {
        sink->AddCounter("pulled_total", "Pulled.", 1);
      });

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerWriter; ++i) {
        // A small rotating label set: most Adds hit existing cells, some
        // race the lazy registration path.
        ops->GetCounter({std::to_string(rng.Next() % 8)})->Add();
        lat->GetHistogram({(i & 1) != 0 ? "read" : "write"})
            ->Observe(rng.Next() % 10000);
        depth->Add(1.0);
      }
    });
  }
  std::thread scraper([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string text = reg.ExpositionText();
      ASSERT_NE(text.find("ops_total"), std::string::npos);
      ASSERT_NE(text.find("pulled_total"), std::string::npos);
    }
  });
  std::thread toggler([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      obs::SetMetricsEnabled(false);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      obs::SetMetricsEnabled(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  scraper.join();
  toggler.join();
  obs::SetMetricsEnabled(true);
  reg.RemoveCollector(collector);

  // With the toggler dropping some records, totals are bounded above by
  // the attempted count and the exposition must stay well-formed.
  uint64_t total = 0;
  for (int s = 0; s < 8; ++s) {
    total += ops->GetCounter({std::to_string(s)})->value();
  }
  EXPECT_LE(total, static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace mlkv
