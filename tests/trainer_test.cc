// Integration tests: full training pipelines over real storage backends.
// Each asserts the pipeline runs end-to-end AND that the model genuinely
// learns (metric clears a threshold well above chance) — the property the
// paper's convergence figures rest on.
#include <gtest/gtest.h>

#include <memory>

#include "backend/kv_backend.h"
#include "io/temp_dir.h"
#include "train/ctr_trainer.h"
#include "train/ddp_sim.h"
#include "train/energy.h"
#include "train/gnn_trainer.h"
#include "train/kge_trainer.h"

namespace mlkv {
namespace {

std::unique_ptr<KvBackend> MakeTestBackend(const TempDir& dir,
                                           BackendKind kind,
                                           uint32_t dim,
                                           uint32_t bound = 64) {
  BackendConfig cfg;
  cfg.dir = dir.File("b");
  cfg.dim = dim;
  cfg.buffer_bytes = 8ull << 20;
  cfg.staleness_bound = bound;
  std::unique_ptr<KvBackend> backend;
  EXPECT_TRUE(MakeBackend(kind, cfg, &backend).ok());
  return backend;
}

CtrTrainerOptions SmallCtr() {
  CtrTrainerOptions o;
  o.data.num_fields = 4;
  o.data.field_cardinality = 2000;
  o.data.label_noise = 0.05;
  o.dim = 8;
  o.batch_size = 128;
  o.num_workers = 2;
  o.train_batches = 400;
  o.eval_every = 100;
  o.eval_samples = 1500;
  o.embedding_lr = 0.3f;
  return o;
}

TEST(CtrTrainerTest, LearnsOnMlkv) {
  TempDir dir;
  auto backend = MakeTestBackend(dir, BackendKind::kMlkv, 8);
  CtrTrainer trainer(backend.get(), SmallCtr());
  TrainResult r = trainer.Train();
  EXPECT_EQ(r.samples, 2u * 400u * 128u);
  ASSERT_FALSE(r.metric_curve.empty());
  EXPECT_GT(r.final_metric, 0.62) << "AUC must clear chance by a wide margin";
  EXPECT_GT(r.throughput(), 0.0);
  EXPECT_GT(r.embedding_seconds, 0.0);
  EXPECT_GT(r.forward_seconds, 0.0);
}

TEST(CtrTrainerTest, DcnAlsoLearns) {
  TempDir dir;
  auto backend = MakeTestBackend(dir, BackendKind::kInMemory, 8);
  CtrTrainerOptions o = SmallCtr();
  o.model = CtrModelKind::kDcn;
  CtrTrainer trainer(backend.get(), o);
  TrainResult r = trainer.Train();
  EXPECT_GT(r.final_metric, 0.62);
}

TEST(CtrTrainerTest, LookaheadDoesNotChangeSemantics) {
  TempDir dir1, dir2;
  auto b1 = MakeTestBackend(dir1, BackendKind::kMlkv, 8);
  auto b2 = MakeTestBackend(dir2, BackendKind::kMlkv, 8);
  CtrTrainerOptions o = SmallCtr();
  o.num_workers = 1;
  CtrTrainer t1(b1.get(), o);
  o.lookahead_depth = 4;
  CtrTrainer t2(b2.get(), o);
  const TrainResult r1 = t1.Train();
  const TrainResult r2 = t2.Train();
  // Single-worker runs are deterministic in sample order; AUC should agree
  // closely (lookahead only moves data, it never changes values).
  EXPECT_NEAR(r1.final_metric, r2.final_metric, 0.03);
}

TEST(CtrTrainerTest, BspBoundZeroStillTrains) {
  TempDir dir;
  auto backend = MakeTestBackend(dir, BackendKind::kMlkv, 8, /*bound=*/0);
  CtrTrainerOptions o = SmallCtr();
  o.num_workers = 1;  // true BSP
  o.train_batches = 200;
  CtrTrainer trainer(backend.get(), o);
  TrainResult r = trainer.Train();
  EXPECT_GT(r.final_metric, 0.56);
  EXPECT_EQ(r.busy_aborts, 0u);
}

TEST(KgeTrainerTest, DistMultLearnsLinkStructure) {
  TempDir dir;
  auto backend = MakeTestBackend(dir, BackendKind::kMlkv, 16);
  KgeTrainerOptions o;
  o.data.num_entities = 1500;
  o.data.num_relations = 4;
  o.data.num_clusters = 8;
  o.dim = 16;
  o.batch_size = 128;
  o.num_workers = 2;
  o.train_batches = 600;
  o.eval_every = 200;
  o.eval_triples = 300;
  KgeTrainer trainer(backend.get(), o);
  TrainResult r = trainer.Train();
  ASSERT_FALSE(r.metric_curve.empty());
  // Random Hits@10 with 50 negatives ~ 10/51 ~ 0.2.
  EXPECT_GT(r.final_metric, 0.4);
}

TEST(KgeTrainerTest, ComplExAlsoLearns) {
  TempDir dir;
  auto backend = MakeTestBackend(dir, BackendKind::kInMemory, 16);
  KgeTrainerOptions o;
  o.data.num_entities = 1500;
  o.data.num_relations = 4;
  o.data.num_clusters = 8;
  o.model = KgeModelKind::kComplEx;
  o.dim = 16;
  o.batch_size = 128;
  o.num_workers = 2;
  o.train_batches = 600;
  o.eval_every = 200;
  o.eval_triples = 300;
  KgeTrainer trainer(backend.get(), o);
  TrainResult r = trainer.Train();
  EXPECT_GT(r.final_metric, 0.35);
}

TEST(KgeTrainerTest, BetaOrderingPreservesLearning) {
  TempDir dir;
  auto backend = MakeTestBackend(dir, BackendKind::kMlkv, 16);
  KgeTrainerOptions o;
  o.data.num_entities = 1500;
  o.data.num_relations = 4;
  o.data.num_clusters = 8;
  o.dim = 16;
  o.batch_size = 128;
  o.num_workers = 2;
  o.train_batches = 600;
  o.eval_every = 300;
  o.eval_triples = 300;
  o.use_beta = true;
  KgeTrainer trainer(backend.get(), o);
  TrainResult r = trainer.Train();
  EXPECT_GT(r.final_metric, 0.35);
}

TEST(GnnTrainerTest, GraphSageLearnsCommunities) {
  TempDir dir;
  auto backend = MakeTestBackend(dir, BackendKind::kMlkv, 16);
  GnnTrainerOptions o;
  o.graph.num_nodes = 2000;
  o.graph.num_classes = 4;
  o.graph.fanout = 4;
  o.dim = 16;
  o.hidden = 16;
  o.batch_size = 64;
  o.num_workers = 2;
  o.train_batches = 400;
  o.eval_every = 100;
  o.eval_nodes = 500;
  o.embedding_lr = 0.1f;
  GnnTrainer trainer(backend.get(), o);
  TrainResult r = trainer.Train();
  ASSERT_FALSE(r.metric_curve.empty());
  EXPECT_GT(r.final_metric, 0.55) << "4-class chance is 0.25";
}

TEST(GnnTrainerTest, GatAlsoLearns) {
  TempDir dir;
  auto backend = MakeTestBackend(dir, BackendKind::kInMemory, 16);
  GnnTrainerOptions o;
  o.graph.num_nodes = 2000;
  o.graph.num_classes = 4;
  o.graph.fanout = 4;
  o.model = GnnModelKind::kGat;
  o.dim = 16;
  o.hidden = 16;
  o.batch_size = 64;
  o.num_workers = 2;
  o.train_batches = 400;
  o.eval_every = 100;
  o.eval_nodes = 500;
  o.embedding_lr = 0.1f;
  GnnTrainer trainer(backend.get(), o);
  TrainResult r = trainer.Train();
  EXPECT_GT(r.final_metric, 0.45);
}

TEST(GnnTrainerTest, EbayTriskRunsAndLearnsAuc) {
  TempDir dir;
  auto backend = MakeTestBackend(dir, BackendKind::kMlkv, 16);
  GnnTrainerOptions o;
  o.task = GnnTask::kEbayTrisk;
  o.ebay.num_transactions = 20000;
  o.ebay.num_entities = 5000;
  o.dim = 16;
  o.hidden = 16;
  o.batch_size = 64;
  o.num_workers = 2;
  o.embedding_lr = 0.1f;
  o.train_batches = 300;
  o.eval_every = 100;
  o.eval_nodes = 800;
  GnnTrainer trainer(backend.get(), o);
  TrainResult r = trainer.Train();
  EXPECT_GT(r.final_metric, 0.6) << "risk AUC must beat chance";
}

TEST(EnergyModelTest, StallsCostIdleEnergy) {
  EnergyModel model;
  TrainResult fast;
  fast.seconds = 10;
  fast.forward_seconds = 5;
  fast.backward_seconds = 4;  // 90% busy
  TrainResult stalled = fast;
  stalled.seconds = 30;       // same compute, 3x wall time (data stalls)
  EXPECT_GT(model.TotalJoules(stalled), model.TotalJoules(fast));
}

TEST(EnergyModelTest, IoBytesAddEnergy) {
  EnergyModel model;
  TrainResult a;
  a.seconds = 10;
  TrainResult b = a;
  b.device_bytes_read = 100ull << 30;
  EXPECT_GT(model.TotalJoules(b), model.TotalJoules(a));
}

TEST(DdpSimTest, TwoInstancesLessThanDoubleSingle) {
  DdpSim sim;
  TrainResult single;
  single.samples = 256 * 100;
  single.seconds = 10;  // 2560 samples/s
  const double ddp = sim.Throughput(single, 100);
  EXPECT_GT(ddp, single.throughput()) << "two instances beat one";
  EXPECT_LT(ddp, 2 * single.throughput()) << "allreduce costs something";
}

}  // namespace
}  // namespace mlkv
