// Mlkv directory-level API tests: manifest persistence, table reopen with
// checkpoint recovery, configuration mismatch detection, export/import, and
// maintenance (CompactAll).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "io/temp_dir.h"
#include "mlkv/mlkv.h"

namespace mlkv {
namespace {

MlkvOptions SmallDb(const TempDir& dir) {
  MlkvOptions opts;
  opts.dir = dir.path() + "/db";
  opts.index_slots = 1024;
  opts.page_size = 4096;
  opts.mem_size = 16 * 4096;
  return opts;
}

TEST(MlkvManifestTest, RejectsBadModelIds) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallDb(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  EXPECT_TRUE(db->OpenTable("", 8, 0, &t).IsInvalidArgument());
  EXPECT_TRUE(db->OpenTable("has space", 8, 0, &t).IsInvalidArgument());
  EXPECT_TRUE(db->OpenTable("slash/y", 8, 0, &t).IsInvalidArgument());
  EXPECT_TRUE(db->OpenTable("ok-id_1.x", 8, 0, &t).ok());
}

TEST(MlkvManifestTest, ManifestListsCreatedTables) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallDb(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("alpha", 8, 0, &t).ok());
  ASSERT_TRUE(db->OpenTable("beta", 16, 4, &t).ok());
  auto ids = db->ListTables();
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "alpha");
  EXPECT_EQ(ids[1], "beta");
}

TEST(MlkvManifestTest, ManifestSurvivesReopen) {
  TempDir dir;
  const MlkvOptions opts = SmallDb(dir);
  {
    std::unique_ptr<Mlkv> db;
    ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
    EmbeddingTable* t = nullptr;
    OptimizerConfig cfg;
    cfg.kind = OptimizerKind::kAdam;
    cfg.lr = 0.02f;
    ASSERT_TRUE(db->OpenTable("emb", 32, 8, &t, cfg).ok());
  }
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
  const auto ids = db->ListTables();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], "emb");
}

TEST(MlkvManifestTest, ReopenWithDifferentConfigFails) {
  TempDir dir;
  const MlkvOptions opts = SmallDb(dir);
  {
    std::unique_ptr<Mlkv> db;
    ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
    EmbeddingTable* t = nullptr;
    ASSERT_TRUE(db->OpenTable("emb", 32, 8, &t).ok());
  }
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
  EmbeddingTable* t = nullptr;
  EXPECT_TRUE(db->OpenTable("emb", 16, 8, &t).IsInvalidArgument());
  EXPECT_TRUE(db->OpenTable("emb", 32, 4, &t).IsInvalidArgument());
  OptimizerConfig adam;
  adam.kind = OptimizerKind::kAdam;
  EXPECT_TRUE(db->OpenTable("emb", 32, 8, &t, adam).IsInvalidArgument());
  EXPECT_TRUE(db->OpenTable("emb", 32, 8, &t).ok());
}

TEST(MlkvManifestTest, CorruptManifestIsDetected) {
  TempDir dir;
  const MlkvOptions opts = SmallDb(dir);
  {
    std::unique_ptr<Mlkv> db;
    ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
    EmbeddingTable* t = nullptr;
    ASSERT_TRUE(db->OpenTable("emb", 32, 8, &t).ok());
  }
  std::ofstream out(opts.dir + "/MANIFEST", std::ios::trunc);
  out << "GARBAGE\n";
  out.close();
  std::unique_ptr<Mlkv> db;
  EXPECT_TRUE(Mlkv::Open(opts, &db).IsCorruption());
}

TEST(MlkvReopenTest, DataRecoversFromCheckpoint) {
  TempDir dir;
  const MlkvOptions opts = SmallDb(dir);
  const uint32_t dim = 8;
  std::vector<float> v(dim);
  {
    std::unique_ptr<Mlkv> db;
    ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
    EmbeddingTable* t = nullptr;
    ASSERT_TRUE(db->OpenTable("emb", dim, 4, &t).ok());
    for (Key k = 0; k < 100; ++k) {
      for (uint32_t d = 0; d < dim; ++d) v[d] = static_cast<float>(k + d);
      ASSERT_TRUE(t->Put({&k, 1}, v.data()).ok());
    }
    ASSERT_TRUE(db->CheckpointAll().ok());
  }
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("emb", dim, 4, &t).ok());
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(t->Get({&k, 1}, v.data()).ok()) << "key " << k;
    for (uint32_t d = 0; d < dim; ++d) {
      EXPECT_FLOAT_EQ(v[d], static_cast<float>(k + d));
    }
  }
}

TEST(MlkvReopenTest, UncheckpointedTableReopensEmpty) {
  TempDir dir;
  const MlkvOptions opts = SmallDb(dir);
  const uint32_t dim = 8;
  std::vector<float> v(dim, 1.0f);
  {
    std::unique_ptr<Mlkv> db;
    ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
    EmbeddingTable* t = nullptr;
    ASSERT_TRUE(db->OpenTable("emb", dim, 4, &t).ok());
    Key k = 7;
    ASSERT_TRUE(t->Put({&k, 1}, v.data()).ok());
    // No CheckpointAll: the durability unit is the checkpoint.
  }
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("emb", dim, 4, &t).ok());
  Key k = 7;
  EXPECT_TRUE(t->Get({&k, 1}, v.data()).IsNotFound());
}

TEST(MlkvExportTest, ExportImportRoundTrip) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallDb(dir), &db).ok());
  EmbeddingTable* src = nullptr;
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdagrad;
  ASSERT_TRUE(db->OpenTable("src", 8, 4, &src, cfg).ok());
  std::vector<float> v(8);
  const int n = 200;
  for (Key k = 0; k < n; ++k) {
    for (uint32_t d = 0; d < 8; ++d) {
      v[d] = static_cast<float>(k) * 0.5f + static_cast<float>(d);
    }
    ASSERT_TRUE(src->Put({&k, 1}, v.data()).ok());
  }
  const std::string path = dir.File("export.bin");
  ASSERT_TRUE(src->Export(path).ok());

  EmbeddingTable* dst = nullptr;
  ASSERT_TRUE(db->OpenTable("dst", 8, 4, &dst).ok());  // stateless table
  ASSERT_TRUE(dst->Import(path).ok());
  std::vector<float> got(8);
  for (Key k = 0; k < n; ++k) {
    ASSERT_TRUE(dst->Get({&k, 1}, got.data()).ok()) << "key " << k;
    for (uint32_t d = 0; d < 8; ++d) {
      EXPECT_FLOAT_EQ(got[d],
                      static_cast<float>(k) * 0.5f + static_cast<float>(d));
    }
  }
}

TEST(MlkvExportTest, ExportStripsOptimizerState) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallDb(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdam;
  ASSERT_TRUE(db->OpenTable("t", 4, 4, &t, cfg).ok());
  Key k = 1;
  std::vector<float> v{1.0f, 2.0f, 3.0f, 4.0f};
  ASSERT_TRUE(t->Put({&k, 1}, v.data()).ok());
  const std::string path = dir.File("export.bin");
  ASSERT_TRUE(t->Export(path).ok());
  // File size: header (24) + 1 * (key 8 + 4 floats 16) = 48 bytes.
  EXPECT_EQ(std::filesystem::file_size(path), 48u);
}

TEST(MlkvExportTest, ImportRejectsDimMismatch) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallDb(dir), &db).ok());
  EmbeddingTable* a = nullptr;
  EmbeddingTable* b = nullptr;
  ASSERT_TRUE(db->OpenTable("a", 8, 4, &a).ok());
  ASSERT_TRUE(db->OpenTable("b", 16, 4, &b).ok());
  Key k = 1;
  std::vector<float> v(8, 1.0f);
  ASSERT_TRUE(a->Put({&k, 1}, v.data()).ok());
  const std::string path = dir.File("export.bin");
  ASSERT_TRUE(a->Export(path).ok());
  EXPECT_TRUE(b->Import(path).IsInvalidArgument());
}


TEST(MlkvExportTest, EmptyTableExportsHeaderOnly) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallDb(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("t", 8, 4, &t).ok());
  const std::string path = dir.File("empty.bin");
  ASSERT_TRUE(t->Export(path).ok());
  EXPECT_EQ(std::filesystem::file_size(path), 24u);  // header only
  EmbeddingTable* u = nullptr;
  ASSERT_TRUE(db->OpenTable("u", 8, 4, &u).ok());
  ASSERT_TRUE(u->Import(path).ok());
  EXPECT_EQ(u->num_embeddings(), 0u);
}

TEST(MlkvExportTest, ImportOverwritesExistingRows) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallDb(dir), &db).ok());
  EmbeddingTable* a = nullptr;
  EmbeddingTable* b = nullptr;
  ASSERT_TRUE(db->OpenTable("a", 8, 4, &a).ok());
  ASSERT_TRUE(db->OpenTable("b", 8, 4, &b).ok());
  std::vector<float> ones(8, 1.0f), twos(8, 2.0f);
  Key k = 5;
  ASSERT_TRUE(a->Put({&k, 1}, ones.data()).ok());
  ASSERT_TRUE(b->Put({&k, 1}, twos.data()).ok());
  const std::string path = dir.File("a.bin");
  ASSERT_TRUE(a->Export(path).ok());
  ASSERT_TRUE(b->Import(path).ok());
  std::vector<float> got(8);
  ASSERT_TRUE(b->Get({&k, 1}, got.data()).ok());
  EXPECT_FLOAT_EQ(got[0], 1.0f);
}

TEST(MlkvExportTest, ImportRejectsGarbageFile) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallDb(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("t", 8, 4, &t).ok());
  const std::string path = dir.File("garbage.bin");
  std::ofstream out(path, std::ios::binary);
  out << "this is not an export file at all, but long enough to read";
  out.close();
  EXPECT_TRUE(t->Import(path).IsCorruption());
}

TEST(MlkvMaintenanceTest, CompactAllReclaimsGarbage) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallDb(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("t", 8, kAspBound, &t).ok());
  std::vector<float> v(8, 1.0f);
  // More keys than the in-memory buffer holds: round-robin updates keep
  // finding their target cold, so every round appends RCU garbage.
  const Key kKeys = 1500;
  const int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    for (Key k = 0; k < kKeys; ++k) {
      v[0] = static_cast<float>(round);
      ASSERT_TRUE(t->Put({&k, 1}, v.data()).ok());
    }
  }
  const uint64_t begin_before = t->store()->log_begin_total();
  ASSERT_TRUE(db->CompactAll().ok());
  EXPECT_GT(t->store()->log_begin_total(), begin_before);
  std::vector<float> got(8);
  for (Key k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(t->Get({&k, 1}, got.data()).ok());
    EXPECT_FLOAT_EQ(got[0], static_cast<float>(kRounds - 1));
  }
}

TEST(MlkvMaintenanceTest, CompactStorageThresholded) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallDb(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("t", 8, kAspBound, &t).ok());
  std::vector<float> v(8, 1.0f);
  for (Key k = 0; k < 1500; ++k) {
    ASSERT_TRUE(t->Put({&k, 1}, v.data()).ok());
  }
  ASSERT_GT(t->store()->log_read_only_total(),
            t->store()->num_shards() * HybridLog::kLogBegin);
  const uint64_t begin_before = t->store()->log_begin_total();
  // Huge threshold: nothing happens.
  ASSERT_TRUE(t->CompactStorage(1ull << 30).ok());
  EXPECT_EQ(t->store()->log_begin_total(), begin_before);
  // Forced pass.
  ASSERT_TRUE(t->CompactStorage().ok());
  EXPECT_GT(t->store()->log_begin_total(), begin_before);
}

}  // namespace
}  // namespace mlkv
