// AsyncIoEngine, GroupCommitter, and FaultyFileDevice unit tests:
// submit/complete correctness against real files (reads and writes),
// batch isolation, depth-limit backpressure, drain-on-shutdown with
// submissions outstanding, the io_uring/thread-pool backend split, the
// batched-fsync commit protocol, and the fault decorator's scripted
// failures.
#include "io/async_io.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "io/faulty_file_device.h"
#include "io/group_committer.h"
#include "io/temp_dir.h"

namespace mlkv {
namespace {

// A file whose byte at offset i is a deterministic function of i.
void FillPattern(FileDevice* dev, size_t n) {
  std::vector<char> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<char>((i * 131) & 0xFF);
  }
  ASSERT_TRUE(dev->WriteAt(0, data.data(), n).ok());
}

bool MatchesPattern(const char* buf, uint64_t offset, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (buf[i] != static_cast<char>(((offset + i) * 131) & 0xFF)) {
      return false;
    }
  }
  return true;
}

class AsyncIoTest : public ::testing::TestWithParam<bool> {
 protected:
  AsyncIoEngine::Options EngineOptions(size_t threads = 4) {
    AsyncIoEngine::Options o;
    o.io_threads = threads;
    o.try_io_uring = GetParam();
    return o;
  }
};

TEST_P(AsyncIoTest, ReadsLandCorrectBytes) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());
  constexpr size_t kFile = 64 * 1024;
  FillPattern(&dev, kFile);

  AsyncIoEngine engine(EngineOptions());
  AsyncIoEngine::Batch batch(&engine);
  constexpr size_t kReads = 64;
  constexpr uint32_t kLen = 512;
  std::vector<std::vector<char>> bufs(kReads, std::vector<char>(kLen));
  std::vector<uint64_t> offsets(kReads);
  for (size_t i = 0; i < kReads; ++i) {
    offsets[i] = (i * 997) % (kFile - kLen);
    ASSERT_TRUE(
        batch.Submit(&dev, offsets[i], bufs[i].data(), kLen, i).ok());
  }
  size_t completed = 0;
  AsyncIoEngine::Completion c;
  std::vector<uint8_t> seen(kReads, 0);
  while (batch.WaitOne(&c)) {
    ASSERT_TRUE(c.status.ok()) << c.status.ToString();
    ASSERT_LT(c.tag, kReads);
    EXPECT_FALSE(seen[c.tag]) << "duplicate completion";
    seen[c.tag] = 1;
    EXPECT_TRUE(MatchesPattern(bufs[c.tag].data(), offsets[c.tag], kLen));
    ++completed;
  }
  EXPECT_EQ(completed, kReads);
  const AsyncIoStats s = engine.stats();
  EXPECT_EQ(s.reads_submitted, kReads);
  EXPECT_EQ(s.reads_completed, kReads);
  EXPECT_EQ(s.read_failures, 0u);
}

TEST_P(AsyncIoTest, ReadPastEofZeroFills) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());
  FillPattern(&dev, 1024);

  AsyncIoEngine engine(EngineOptions(2));
  AsyncIoEngine::Batch batch(&engine);
  // Straddles EOF: first half real bytes, rest zero (the blocking
  // ReadAt contract, which async reads must preserve).
  std::vector<char> buf(512, 'x');
  ASSERT_TRUE(batch.Submit(&dev, 768, buf.data(), 512, 0).ok());
  AsyncIoEngine::Completion c;
  ASSERT_TRUE(batch.WaitOne(&c));
  EXPECT_TRUE(c.status.ok());
  EXPECT_TRUE(MatchesPattern(buf.data(), 768, 256));
  for (size_t i = 256; i < 512; ++i) EXPECT_EQ(buf[i], 0) << i;
}

TEST_P(AsyncIoTest, BatchesAreIsolated) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());
  FillPattern(&dev, 8192);

  AsyncIoEngine engine(EngineOptions(2));
  AsyncIoEngine::Batch a(&engine);
  AsyncIoEngine::Batch b(&engine);
  std::vector<char> abuf(64), bbuf(64);
  ASSERT_TRUE(a.Submit(&dev, 0, abuf.data(), 64, 100).ok());
  ASSERT_TRUE(b.Submit(&dev, 64, bbuf.data(), 64, 200).ok());
  AsyncIoEngine::Completion c;
  ASSERT_TRUE(a.WaitOne(&c));
  EXPECT_EQ(c.tag, 100u);  // never batch b's completion
  ASSERT_TRUE(b.WaitOne(&c));
  EXPECT_EQ(c.tag, 200u);
  EXPECT_FALSE(a.WaitOne(&c));
  EXPECT_FALSE(b.WaitOne(&c));
}

TEST_P(AsyncIoTest, DrainOnShutdownCompletesEverySubmission) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());
  FillPattern(&dev, 64 * 1024);
  // Slow the device so submissions are still queued/in flight when the
  // engine is destroyed; the decorator path also exercises the non-raw
  // (virtual ReadAt) route under io_uring.
  dev.SetSimulatedCosts(/*read_latency_us=*/2000, 0, 0);

  constexpr size_t kReads = 32;
  std::vector<std::vector<char>> bufs(kReads, std::vector<char>(256));
  size_t completed = 0;
  {
    auto engine =
        std::make_unique<AsyncIoEngine>(EngineOptions(/*threads=*/2));
    AsyncIoEngine::Batch batch(engine.get());
    for (size_t i = 0; i < kReads; ++i) {
      ASSERT_TRUE(batch.Submit(&dev, i * 256, bufs[i].data(), 256, i).ok());
    }
    // Destroy the engine with most reads outstanding: the destructor must
    // block until every accepted read completed...
    engine.reset();
    // ...so by now every completion is already waiting in the batch.
    AsyncIoEngine::Completion c;
    while (batch.WaitOne(&c)) {
      EXPECT_TRUE(c.status.ok());
      EXPECT_TRUE(MatchesPattern(bufs[c.tag].data(), c.tag * 256, 256));
      ++completed;
    }
  }
  EXPECT_EQ(completed, kReads);
}

TEST_P(AsyncIoTest, DepthLimitAppliesBackpressureNotLoss) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());
  FillPattern(&dev, 64 * 1024);

  AsyncIoEngine::Options o = EngineOptions(2);
  o.queue_depth = 4;  // far fewer slots than submissions
  AsyncIoEngine engine(o);
  AsyncIoEngine::Batch batch(&engine);
  constexpr size_t kReads = 64;
  std::vector<std::vector<char>> bufs(kReads, std::vector<char>(128));
  for (size_t i = 0; i < kReads; ++i) {
    ASSERT_TRUE(batch.Submit(&dev, i * 128, bufs[i].data(), 128, i).ok());
  }
  size_t completed = 0;
  AsyncIoEngine::Completion c;
  while (batch.WaitOne(&c)) {
    EXPECT_TRUE(c.status.ok());
    ++completed;
  }
  EXPECT_EQ(completed, kReads);
}

TEST_P(AsyncIoTest, WritesLandCorrectBytes) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());

  AsyncIoEngine engine(EngineOptions());
  constexpr size_t kWrites = 48;
  constexpr uint32_t kLen = 512;
  // Disjoint slices, each filled with the global pattern for its offset,
  // submitted out of order — the file must still assemble byte-exact.
  std::vector<std::vector<char>> bufs(kWrites, std::vector<char>(kLen));
  for (size_t i = 0; i < kWrites; ++i) {
    const uint64_t off = i * kLen;
    for (uint32_t j = 0; j < kLen; ++j) {
      bufs[i][j] = static_cast<char>(((off + j) * 131) & 0xFF);
    }
  }
  {
    AsyncIoEngine::Batch batch(&engine);
    for (size_t i = 0; i < kWrites; ++i) {
      const size_t w = (i * 31) % kWrites;  // shuffled submission order
      ASSERT_TRUE(batch
                      .SubmitWrite(&dev, w * kLen, bufs[w].data(), kLen,
                                   w)
                      .ok());
    }
    size_t completed = 0;
    AsyncIoEngine::Completion c;
    std::vector<uint8_t> seen(kWrites, 0);
    while (batch.WaitOne(&c)) {
      ASSERT_TRUE(c.status.ok()) << c.status.ToString();
      ASSERT_LT(c.tag, kWrites);
      EXPECT_FALSE(seen[c.tag]) << "duplicate completion";
      seen[c.tag] = 1;
      ++completed;
    }
    EXPECT_EQ(completed, kWrites);
  }
  std::vector<char> all(kWrites * kLen);
  ASSERT_TRUE(dev.ReadAt(0, all.data(), all.size()).ok());
  EXPECT_TRUE(MatchesPattern(all.data(), 0, all.size()));
  const AsyncIoStats s = engine.stats();
  EXPECT_EQ(s.writes_submitted, kWrites);
  EXPECT_EQ(s.writes_completed, kWrites);
  EXPECT_EQ(s.write_failures, 0u);
}

TEST_P(AsyncIoTest, MixedReadsAndWritesInOneBatch) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());
  FillPattern(&dev, 4096);

  AsyncIoEngine engine(EngineOptions(2));
  AsyncIoEngine::Batch batch(&engine);
  std::vector<char> rbuf(256);
  std::vector<char> wbuf(256);
  for (size_t j = 0; j < wbuf.size(); ++j) {
    wbuf[j] = static_cast<char>(((4096 + j) * 131) & 0xFF);
  }
  ASSERT_TRUE(batch.Submit(&dev, 1024, rbuf.data(), 256, 1).ok());
  ASSERT_TRUE(batch.SubmitWrite(&dev, 4096, wbuf.data(), 256, 2).ok());
  AsyncIoEngine::Completion c;
  size_t done = 0;
  while (batch.WaitOne(&c)) {
    EXPECT_TRUE(c.status.ok());
    ++done;
  }
  EXPECT_EQ(done, 2u);
  EXPECT_TRUE(MatchesPattern(rbuf.data(), 1024, 256));
  std::vector<char> check(256);
  ASSERT_TRUE(dev.ReadAt(4096, check.data(), 256).ok());
  EXPECT_TRUE(MatchesPattern(check.data(), 4096, 256));
}

INSTANTIATE_TEST_SUITE_P(Backends, AsyncIoTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "TryIoUring" : "ThreadPool";
                         });

TEST(FaultyFileDeviceTest, ScriptedErrorAndRecovery) {
  TempDir dir;
  auto script = std::make_shared<FaultyFileDevice::Script>();
  FaultyFileDevice dev(script);
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());
  std::vector<char> data(256, 7);
  ASSERT_TRUE(dev.WriteAt(0, data.data(), data.size()).ok());

  char buf[256];
  ASSERT_TRUE(dev.ReadAt(0, buf, sizeof(buf)).ok());  // read #1: clean
  script->fail_from.store(2);                         // arm read #2
  const Status s = dev.ReadAt(0, buf, sizeof(buf));
  ASSERT_TRUE(s.IsIOError());
  EXPECT_NE(s.message().find("injected"), std::string::npos);
  ASSERT_TRUE(dev.ReadAt(0, buf, sizeof(buf)).ok());  // #3: recovered
  EXPECT_EQ(buf[0], 7);
  EXPECT_EQ(script->reads.load(), 3u);
}

TEST(FaultyFileDeviceTest, ShortReadTearsAndZeroFills) {
  TempDir dir;
  auto script = std::make_shared<FaultyFileDevice::Script>();
  FaultyFileDevice dev(script);
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());
  std::vector<char> data(256, 9);
  ASSERT_TRUE(dev.WriteAt(0, data.data(), data.size()).ok());

  script->fail_from.store(1);
  script->short_read.store(true);
  char buf[256];
  std::memset(buf, 'x', sizeof(buf));
  ASSERT_TRUE(dev.ReadAt(0, buf, sizeof(buf)).ok());  // "succeeds", torn
  EXPECT_EQ(buf[0], 9);            // first half served
  EXPECT_EQ(buf[127], 9);
  EXPECT_EQ(buf[128], 0);          // rest zeroed
  EXPECT_EQ(buf[255], 0);
  // Decorated devices must never ride the raw-fd path.
  EXPECT_FALSE(dev.AllowsRawReads());
}

TEST(FaultyFileDeviceTest, EngineRoutesDecoratedDeviceThroughReadAt) {
  TempDir dir;
  auto script = std::make_shared<FaultyFileDevice::Script>();
  FaultyFileDevice dev(script);
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());
  std::vector<char> data(1024, 3);
  ASSERT_TRUE(dev.WriteAt(0, data.data(), data.size()).ok());

  AsyncIoEngine engine;  // io_uring if available — decorator must bypass it
  AsyncIoEngine::Batch batch(&engine);
  script->fail_from.store(2);  // second engine read faults
  char b1[64], b2[64];
  ASSERT_TRUE(batch.Submit(&dev, 0, b1, sizeof(b1), 1).ok());
  AsyncIoEngine::Completion c;
  ASSERT_TRUE(batch.WaitOne(&c));
  EXPECT_TRUE(c.status.ok());
  ASSERT_TRUE(batch.Submit(&dev, 64, b2, sizeof(b2), 2).ok());
  ASSERT_TRUE(batch.WaitOne(&c));
  EXPECT_TRUE(c.status.IsIOError());  // the script fired → virtual path used
  EXPECT_EQ(engine.stats().read_failures, 1u);
}

TEST(FaultyFileDeviceTest, EngineRoutesDecoratedWriteThroughWriteAt) {
  TempDir dir;
  auto script = std::make_shared<FaultyFileDevice::Script>();
  FaultyFileDevice dev(script);
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());

  AsyncIoEngine engine;  // io_uring if available — decorator must bypass it
  AsyncIoEngine::Batch batch(&engine);
  std::vector<char> buf(128, 5);
  script->write_fail_from.store(2);  // second engine write faults
  ASSERT_TRUE(batch.SubmitWrite(&dev, 0, buf.data(), 128, 1).ok());
  AsyncIoEngine::Completion c;
  ASSERT_TRUE(batch.WaitOne(&c));
  EXPECT_TRUE(c.status.ok());
  ASSERT_TRUE(batch.SubmitWrite(&dev, 128, buf.data(), 128, 2).ok());
  ASSERT_TRUE(batch.WaitOne(&c));
  EXPECT_TRUE(c.status.IsIOError());  // the script fired → virtual path used
  EXPECT_EQ(engine.stats().write_failures, 1u);
}

// N tickets staged inside one commit window cost one fsync, and that
// fsync releases them all.
TEST(GroupCommitterTest, OneFsyncReleasesEveryStagedTicket) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());
  GroupCommitter::Options o;
  o.window_us = 200 * 1000;  // generous: all tickets land in one window
  o.max_bytes = 1ull << 30;
  GroupCommitter committer(&dev, o);

  constexpr size_t kTickets = 8;
  char byte = 1;
  std::vector<uint64_t> tickets;
  for (size_t i = 0; i < kTickets; ++i) {
    ASSERT_TRUE(dev.WriteAt(i, &byte, 1).ok());
    tickets.push_back(committer.StageWrite(1));
  }
  for (const uint64_t t : tickets) {
    EXPECT_TRUE(committer.Wait(t).ok());
  }
  const GroupCommitter::Stats s = committer.stats();
  EXPECT_EQ(s.tickets, kTickets);
  EXPECT_EQ(s.fsyncs, 1u);
  EXPECT_EQ(s.group_commits, 1u);
}

// The staged-bytes trigger closes the window early: a burst past
// max_bytes commits long before the timer would have fired.
TEST(GroupCommitterTest, MaxBytesTriggerClosesWindowEarly) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());
  GroupCommitter::Options o;
  o.window_us = 5 * 1000 * 1000;  // 5 s — must not be what releases us
  o.max_bytes = 1024;
  GroupCommitter committer(&dev, o);

  const auto start = std::chrono::steady_clock::now();
  const uint64_t t = committer.StageWrite(4096);  // past the trigger alone
  ASSERT_TRUE(committer.Wait(t).ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2500);
}

TEST(GroupCommitterTest, FsyncFailureIsStickyAcrossTickets) {
  TempDir dir;
  auto script = std::make_shared<FaultyFileDevice::Script>();
  FaultyFileDevice dev(script);
  ASSERT_TRUE(dev.Open(dir.File("data")).ok());
  GroupCommitter::Options o;
  o.window_us = 100;
  GroupCommitter committer(&dev, o);

  script->sync_fail_from.store(1);
  script->sync_fail_count.store(1);  // only the first fsync fails
  EXPECT_TRUE(committer.Wait(committer.StageWrite(1)).IsIOError());
  // The device works again, but durability of the dropped pages can never
  // be proven — every later ticket inherits the failure.
  EXPECT_TRUE(committer.Wait(committer.StageWrite(1)).IsIOError());
}

TEST(IoModeTest, ParseAndName) {
  IoMode m = IoMode::kAsync;
  EXPECT_TRUE(ParseIoMode("sync", &m));
  EXPECT_EQ(m, IoMode::kSync);
  EXPECT_TRUE(ParseIoMode("async", &m));
  EXPECT_EQ(m, IoMode::kAsync);
  EXPECT_FALSE(ParseIoMode("uring", &m));
  EXPECT_STREQ(IoModeName(IoMode::kSync), "sync");
  EXPECT_STREQ(IoModeName(IoMode::kAsync), "async");
}

TEST(IoModeTest, DurabilityModeParseAndName) {
  DurabilityMode m = DurabilityMode::kGroup;
  EXPECT_TRUE(ParseDurabilityMode("sync", &m));
  EXPECT_EQ(m, DurabilityMode::kSync);
  EXPECT_TRUE(ParseDurabilityMode("group", &m));
  EXPECT_EQ(m, DurabilityMode::kGroup);
  EXPECT_FALSE(ParseDurabilityMode("wal", &m));
  EXPECT_STREQ(DurabilityModeName(DurabilityMode::kSync), "sync");
  EXPECT_STREQ(DurabilityModeName(DurabilityMode::kGroup), "group");
}

TEST(IoModeTest, CheckpointModeParseAndName) {
  CheckpointMode m = CheckpointMode::kIncremental;
  EXPECT_TRUE(ParseCheckpointMode("full", &m));
  EXPECT_EQ(m, CheckpointMode::kFull);
  EXPECT_TRUE(ParseCheckpointMode("incremental", &m));
  EXPECT_EQ(m, CheckpointMode::kIncremental);
  EXPECT_FALSE(ParseCheckpointMode("delta", &m));
  EXPECT_STREQ(CheckpointModeName(CheckpointMode::kFull), "full");
  EXPECT_STREQ(CheckpointModeName(CheckpointMode::kIncremental),
               "incremental");
}

}  // namespace
}  // namespace mlkv
