// Observability tests: the metrics registry (cells, labeled families,
// collectors, the enable switch, Prometheus exposition incl. escaping and
// histogram buckets), the embedded /metrics HTTP endpoint, request-trace
// span trees (nesting, cross-thread propagation), and the KvServer
// integration — stats()-as-registry-view, the slow-request log naming its
// stages (including the io_wave stage of a deliberately slowed cold read),
// and request-id stitching across a cluster hop. Everything runs over
// in-process loopback sockets.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "backend/kv_backend.h"
#include "io/file_device.h"
#include "io/temp_dir.h"
#include "net/kv_server.h"
#include "net/remote_backend.h"
#include "obs/metrics.h"
#include "obs/metrics_http.h"
#include "obs/trace.h"

namespace mlkv {
namespace obs {
namespace {

bool Contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

// --- registry cells ------------------------------------------------------

TEST(MetricsRegistryTest, CounterGaugeHistogramCells) {
  MetricsRegistry reg;
  Counter* c = reg.CounterFamily("c_total", "C.")->GetCounter();
  ASSERT_NE(c, nullptr);
  c->Add();
  c->Add(4);
  EXPECT_EQ(c->value(), 5u);

  Gauge* g = reg.GaugeFamily("g", "G.")->GetGauge();
  ASSERT_NE(g, nullptr);
  g->Set(2.5);
  g->Add(1.0);
  EXPECT_DOUBLE_EQ(g->value(), 3.5);

  HistogramCell* h = reg.HistogramFamily("h_seconds", "H.")->GetHistogram();
  ASSERT_NE(h, nullptr);
  h->Observe(100);
  EXPECT_EQ(h->histogram().count(), 1u);
  EXPECT_EQ(reg.FamilyCount(), 3u);
}

TEST(MetricsRegistryTest, CellPointersAreStable) {
  MetricsRegistry reg;
  MetricFamily* fam = reg.CounterFamily("ops_total", "Ops.", {"op"});
  Counter* first = fam->GetCounter({"read"});
  first->Add(7);
  EXPECT_EQ(fam->GetCounter({"read"}), first);
  EXPECT_EQ(reg.CounterFamily("ops_total", "Ops.", {"op"}), fam);
  EXPECT_EQ(fam->GetCounter({"read"})->value(), 7u);
}

TEST(MetricsRegistryTest, WrongKindOrArityLookupReturnsNull) {
  MetricsRegistry reg;
  MetricFamily* fam = reg.CounterFamily("c_total", "C.", {"k"});
  EXPECT_EQ(fam->GetGauge({"v"}), nullptr);
  EXPECT_EQ(fam->GetHistogram({"v"}), nullptr);
  EXPECT_EQ(fam->GetCounter(), nullptr);           // arity mismatch
  EXPECT_EQ(fam->GetCounter({"a", "b"}), nullptr);  // arity mismatch
}

TEST(MetricsRegistryTest, DisableFreezesRecordPaths) {
  MetricsRegistry reg;
  Counter* c = reg.CounterFamily("c_total", "C.")->GetCounter();
  Gauge* g = reg.GaugeFamily("g", "G.")->GetGauge();
  HistogramCell* h = reg.HistogramFamily("h_seconds", "H.")->GetHistogram();
  c->Add();
  g->Set(1.0);
  h->Observe(10);
  SetMetricsEnabled(false);
  c->Add(100);
  g->Set(9.0);
  h->Observe(10);
  SetMetricsEnabled(true);
  EXPECT_EQ(c->value(), 1u);
  EXPECT_DOUBLE_EQ(g->value(), 1.0);
  EXPECT_EQ(h->histogram().count(), 1u);
}

TEST(MetricsRegistryTest, EwmaSeedsConvergesAndFreezes) {
  Ewma e;  // default alpha 0.125
  e.Observe(100.0);
  EXPECT_DOUBLE_EQ(e.value(), 100.0);  // first sample seeds, no decay from 0
  for (int i = 0; i < 100; ++i) e.Observe(200.0);
  EXPECT_GT(e.value(), 190.0);
  EXPECT_LE(e.value(), 200.0);
  EXPECT_EQ(e.count(), 101u);
  SetMetricsEnabled(false);
  e.Observe(100000.0);
  SetMetricsEnabled(true);
  EXPECT_LE(e.value(), 200.0);
}

TEST(MetricsValidationTest, NamesAndLabelKeys) {
  EXPECT_TRUE(ValidMetricName("mlkv_ops_total"));
  EXPECT_TRUE(ValidMetricName("a:b_c9"));
  EXPECT_FALSE(ValidMetricName(""));
  EXPECT_FALSE(ValidMetricName("9leading"));
  EXPECT_FALSE(ValidMetricName("has space"));
  EXPECT_TRUE(ValidLabelKey("shard"));
  EXPECT_FALSE(ValidLabelKey("with:colon"));  // colons are name-only
  EXPECT_FALSE(ValidLabelKey(""));
}

// --- exposition ----------------------------------------------------------

TEST(ExpositionTest, GoldenUnlabeledCounterAndGauge) {
  MetricsRegistry reg;
  reg.CounterFamily("b_total", "Things.")->GetCounter()->Add(3);
  reg.GaugeFamily("a_gauge", "Level.")->GetGauge()->Set(1.5);
  // Families in name order, one HELP/TYPE header each.
  EXPECT_EQ(reg.ExpositionText(),
            "# HELP a_gauge Level.\n"
            "# TYPE a_gauge gauge\n"
            "a_gauge 1.5\n"
            "# HELP b_total Things.\n"
            "# TYPE b_total counter\n"
            "b_total 3\n");
}

TEST(ExpositionTest, LabeledSamplesOrderedByLabelTuple) {
  MetricsRegistry reg;
  MetricFamily* fam = reg.CounterFamily("ops_total", "Ops.", {"shard", "op"});
  fam->GetCounter({"1", "read"})->Add(2);
  fam->GetCounter({"0", "write"})->Add(1);
  const std::string text = reg.ExpositionText();
  const size_t w = text.find("ops_total{shard=\"0\",op=\"write\"} 1");
  const size_t r = text.find("ops_total{shard=\"1\",op=\"read\"} 2");
  ASSERT_NE(w, std::string::npos);
  ASSERT_NE(r, std::string::npos);
  EXPECT_LT(w, r);  // deterministic: ordered by label tuple, not creation
}

TEST(ExpositionTest, EscapesHelpAndLabelValues) {
  MetricsRegistry reg;
  MetricFamily* fam =
      reg.CounterFamily("esc_total", "line1\nline2 back\\slash", {"path"});
  fam->GetCounter({"a\"b\\c\nd"})->Add(1);
  const std::string text = reg.ExpositionText();
  EXPECT_TRUE(Contains(text, "# HELP esc_total line1\\nline2 back\\\\slash"));
  EXPECT_TRUE(Contains(text, "esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
}

TEST(ExpositionTest, HistogramBucketsAreCumulative) {
  MetricsRegistry reg;
  HistogramSpec spec;
  spec.scale = 1.0;  // record and expose the same unit
  spec.bounds = {10.0, 100.0};
  HistogramCell* h =
      reg.HistogramFamily("lat", "Latency.", {}, spec)->GetHistogram();
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);
  const std::string text = reg.ExpositionText();
  EXPECT_TRUE(Contains(text, "# TYPE lat histogram"));
  EXPECT_TRUE(Contains(text, "lat_bucket{le=\"10\"} 1"));
  EXPECT_TRUE(Contains(text, "lat_bucket{le=\"100\"} 2"));
  EXPECT_TRUE(Contains(text, "lat_bucket{le=\"+Inf\"} 3"));
  EXPECT_TRUE(Contains(text, "lat_count 3"));
  EXPECT_TRUE(Contains(text, "lat_sum 555"));
}

TEST(ExpositionTest, CollectorSamplesMergeUnderNativeFamily) {
  MetricsRegistry reg;
  reg.CounterFamily("foo_total", "Foo.")->GetCounter()->Add(1);
  const uint64_t id = reg.AddCollector([](MetricsSink* sink) {
    sink->AddCounter("foo_total", "Foo.", 9, {{"src", "pull"}});
    sink->AddCounter("zz_only_total", "Collector-only.", 4);
  });
  std::string text = reg.ExpositionText();
  // One header for the shared family, both samples under it.
  size_t first = text.find("# TYPE foo_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE foo_total counter", first + 1),
            std::string::npos);
  EXPECT_TRUE(Contains(text, "foo_total 1"));
  EXPECT_TRUE(Contains(text, "foo_total{src=\"pull\"} 9"));
  // Collector-only family appended with its own header.
  EXPECT_TRUE(Contains(text, "# HELP zz_only_total Collector-only."));
  EXPECT_TRUE(Contains(text, "zz_only_total 4"));

  reg.RemoveCollector(id);
  text = reg.ExpositionText();
  EXPECT_FALSE(Contains(text, "zz_only_total"));
  EXPECT_TRUE(Contains(text, "foo_total 1"));
}

// --- /metrics endpoint ---------------------------------------------------

TEST(MetricsHttpTest, ServesExpositionAnd404) {
  MetricsRegistry reg;
  reg.CounterFamily("http_total", "Hits.")->GetCounter()->Add(2);
  MetricsHttpServer http(&reg);
  ASSERT_TRUE(http.Start("127.0.0.1:0").ok());
  ASSERT_NE(http.port(), 0);
  const std::string addr = "127.0.0.1:" + std::to_string(http.port());

  std::string body;
  ASSERT_TRUE(HttpGet(addr, "/metrics", &body).ok());
  EXPECT_TRUE(Contains(body, "http_total 2"));

  std::string none;
  const Status s = HttpGet(addr, "/nope", &none);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(Contains(s.ToString(), "404"));
  http.Stop();
}

// --- trace spans ---------------------------------------------------------

TEST(TraceTest, NestedSpansRenderAsTree) {
  RequestTrace trace("MultiGet", 42);
  {
    ScopedTraceContext ctx({&trace, RequestTrace::kNoParent});
    ScopedSpan outer("decode");
    { ScopedSpan inner("execute", "keys=3"); }
  }
  trace.Finish();
  EXPECT_EQ(trace.op(), std::string("MultiGet"));
  EXPECT_EQ(trace.request_id(), 42u);
  size_t spans = 0;
  uint32_t execute_parent = RequestTrace::kNoParent;
  trace.ForEachSpan([&](const TraceSpan& s) {
    if (std::string(s.stage) == "execute") execute_parent = s.parent;
    ++spans;
  });
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(execute_parent, 0u);  // nested under decode (span 0)
  const std::string render = trace.Render();
  EXPECT_TRUE(Contains(render, "decode"));
  EXPECT_TRUE(Contains(render, "  execute"));  // indented child
  EXPECT_TRUE(Contains(render, "[keys=3]"));
}

TEST(TraceTest, ScopedSpanWithoutTraceIsNoop) {
  EXPECT_EQ(CurrentTrace(), nullptr);
  ScopedSpan span("orphan");  // must not crash or install anything
  EXPECT_EQ(CurrentTrace(), nullptr);
}

TEST(TraceTest, ContextPropagatesAcrossThreads) {
  RequestTrace trace("MultiPut", 7);
  {
    ScopedTraceContext ctx({&trace, RequestTrace::kNoParent});
    ScopedSpan scatter("scatter");
    const TraceContext snap = CurrentTraceContext();
    std::thread worker([snap]() {
      ScopedTraceContext remote(snap);
      ScopedSpan span("shard_execute");
    });
    worker.join();
  }
  bool found = false;
  uint32_t parent = RequestTrace::kNoParent;
  trace.ForEachSpan([&](const TraceSpan& s) {
    if (std::string(s.stage) == "shard_execute") {
      found = true;
      parent = s.parent;
    }
  });
  ASSERT_TRUE(found);
  EXPECT_EQ(parent, 0u);  // child of the scatter span, across the thread
}

TEST(TraceTest, AddSpanRecordsPostHocInterval) {
  RequestTrace trace("MultiGet", 1);
  trace.AddSpan("queue_wait", "", RequestTrace::kNoParent,
                trace.start_us(), 1234);
  bool found = false;
  trace.ForEachSpan([&](const TraceSpan& s) {
    if (std::string(s.stage) == "queue_wait" && s.dur_us == 1234) found = true;
  });
  EXPECT_TRUE(found);
}

// --- KvServer integration ------------------------------------------------

std::unique_ptr<KvBackend> MakeInMemory(uint32_t dim = 8) {
  BackendConfig cfg;
  cfg.dim = dim;
  cfg.dir = "/tmp/mlkv-obs-test-inmem";
  std::unique_ptr<KvBackend> b;
  if (!MakeBackend(BackendKind::kInMemory, cfg, &b).ok()) return nullptr;
  return b;
}

TEST(KvServerObsTest, StatsSnapshotIsViewOverRegistry) {
  net::KvServer server(MakeInMemory());
  ASSERT_TRUE(server.Start().ok());

  net::RemoteBackendOptions o;
  o.addr = server.addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(net::RemoteBackend::Connect(o, &remote).ok());
  const Key key = 9;
  std::vector<float> row(8, 1.0f);
  ASSERT_TRUE(remote->MultiPut({&key, 1}, row.data()).AllOk());
  std::vector<float> out(8, 0.0f);
  ASSERT_TRUE(
      remote->MultiGet({&key, 1}, out.data(), MultiGetOptions()).AllOk());

  const net::StatsSnapshot st = server.stats();
  EXPECT_EQ(st.op_counts[static_cast<uint8_t>(net::Opcode::kMultiGet)], 1u);
  EXPECT_EQ(st.op_counts[static_cast<uint8_t>(net::Opcode::kMultiPut)], 1u);
  EXPECT_GE(st.requests, 2u);
  EXPECT_EQ(st.connections, 1u);

  // The same numbers come out of the registry — snapshot and scrape can
  // never disagree.
  const std::string text = server.metrics()->ExpositionText();
  EXPECT_TRUE(Contains(
      text, "mlkv_server_requests_total{op=\"MultiGet\"} 1"));
  EXPECT_TRUE(Contains(
      text, "mlkv_server_requests_total{op=\"MultiPut\"} 1"));
  EXPECT_TRUE(Contains(text, "mlkv_server_connections_total 1"));
  // Base backend families ride along (InMemory has no sharded-store or
  // disk counters to report beyond these).
  EXPECT_TRUE(Contains(text, "mlkv_io_disk_record_reads_total"));
  EXPECT_TRUE(Contains(text, "mlkv_request_stage_seconds_bucket"));
  server.Stop();
}

TEST(KvServerObsTest, TwoServersKeepSeparateRegistries) {
  net::KvServer a(MakeInMemory());
  net::KvServer b(MakeInMemory());
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  net::RemoteBackendOptions o;
  o.addr = a.addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(net::RemoteBackend::Connect(o, &remote).ok());
  EXPECT_NE(a.metrics(), b.metrics());
  EXPECT_EQ(b.stats().connections, 0u);
  EXPECT_EQ(a.stats().connections, 1u);
  a.Stop();
  b.Stop();
}

TEST(KvServerObsTest, SlowRequestLogNamesStages) {
  std::mutex mu;
  std::vector<std::string> logs;
  net::KvServerOptions opts;
  opts.slow_request_us = 1;  // every traced request is "slow"
  opts.slow_request_log = [&](const std::string& line) {
    std::lock_guard<std::mutex> lk(mu);
    logs.push_back(line);
  };
  net::KvServer server(MakeInMemory(), opts);
  ASSERT_TRUE(server.Start().ok());

  net::RemoteBackendOptions o;
  o.addr = server.addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(net::RemoteBackend::Connect(o, &remote).ok());
  const Key key = 3;
  std::vector<float> row(8, 2.0f);
  ASSERT_TRUE(remote->MultiPut({&key, 1}, row.data()).AllOk());
  server.Stop();

  std::lock_guard<std::mutex> lk(mu);
  bool found = false;
  for (const std::string& line : logs) {
    if (!Contains(line, "op=MultiPut")) continue;
    found = true;
    EXPECT_TRUE(Contains(line, "slow request"));
    EXPECT_TRUE(Contains(line, "threshold=1us"));
    EXPECT_TRUE(Contains(line, "decode"));
    EXPECT_TRUE(Contains(line, "execute"));
  }
  EXPECT_TRUE(found);
}

TEST(KvServerObsTest, SlowColdReadNamesIoWaveStage) {
  // A FASTER backend with a tiny buffer and a simulated 1 ms device read
  // latency: a cold MultiGet's pending-read wave dominates the request, and
  // the slow-request log must name the io_wave stage.
  FileDevice::SetGlobalSimulatedCosts(1000, 0, 0);
  TempDir dir;
  BackendConfig cfg;
  cfg.dir = dir.File("b");
  cfg.dim = 8;
  cfg.buffer_bytes = 1u << 16;
  cfg.index_slots = 4096;
  cfg.io_mode = IoMode::kAsync;
  cfg.io_threads = 2;
  std::unique_ptr<KvBackend> backend;
  ASSERT_TRUE(MakeBackend(BackendKind::kFaster, cfg, &backend).ok());

  std::mutex mu;
  std::vector<std::string> logs;
  net::KvServerOptions opts;
  opts.slow_request_us = 500;
  opts.slow_request_log = [&](const std::string& line) {
    std::lock_guard<std::mutex> lk(mu);
    logs.push_back(line);
  };
  net::KvServer server(std::move(backend), opts);
  ASSERT_TRUE(server.Start().ok());

  net::RemoteBackendOptions o;
  o.addr = server.addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(net::RemoteBackend::Connect(o, &remote).ok());
  constexpr size_t kN = 2000;
  std::vector<Key> keys(kN);
  std::vector<float> rows(kN * 8);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = i;
    for (int d = 0; d < 8; ++d) rows[i * 8 + d] = static_cast<float>(i);
  }
  ASSERT_TRUE(remote->MultiPut(keys, rows.data()).AllOk());
  // Early keys were evicted from the 64 KB buffer: this read goes cold.
  std::vector<float> out(64 * 8, 0.0f);
  ASSERT_TRUE(remote
                  ->MultiGet(std::span<const Key>(keys).first(64), out.data(),
                             MultiGetOptions())
                  .AllOk());
  server.Stop();
  FileDevice::SetGlobalSimulatedCosts(0, 0, 0);

  std::lock_guard<std::mutex> lk(mu);
  bool found = false;
  for (const std::string& line : logs) {
    if (Contains(line, "op=MultiGet") && Contains(line, "io_wave")) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(KvServerObsTest, ClusterHopStitchesRequestIds) {
  // outer server's backend is a RemoteBackend to the inner server: the
  // traced request's id must ride the nested RPC, so both servers' slow
  // logs name the same request.
  std::mutex mu;
  std::vector<std::string> inner_logs, outer_logs;

  net::KvServerOptions inner_opts;
  inner_opts.slow_request_us = 1;
  inner_opts.slow_request_log = [&](const std::string& line) {
    std::lock_guard<std::mutex> lk(mu);
    inner_logs.push_back(line);
  };
  net::KvServer inner(MakeInMemory(), inner_opts);
  ASSERT_TRUE(inner.Start().ok());

  net::RemoteBackendOptions ro;
  ro.addr = inner.addr();
  std::unique_ptr<KvBackend> hop;
  ASSERT_TRUE(net::RemoteBackend::Connect(ro, &hop).ok());

  net::KvServerOptions outer_opts;
  outer_opts.slow_request_us = 1;
  outer_opts.slow_request_log = [&](const std::string& line) {
    std::lock_guard<std::mutex> lk(mu);
    outer_logs.push_back(line);
  };
  net::KvServer outer(std::move(hop), outer_opts);
  ASSERT_TRUE(outer.Start().ok());

  net::RemoteBackendOptions co;
  co.addr = outer.addr();
  std::unique_ptr<KvBackend> client;
  ASSERT_TRUE(net::RemoteBackend::Connect(co, &client).ok());
  const Key key = 5;
  std::vector<float> row(8, 3.0f);
  ASSERT_TRUE(client->MultiPut({&key, 1}, row.data()).AllOk());
  outer.Stop();
  inner.Stop();

  std::lock_guard<std::mutex> lk(mu);
  std::string outer_id;
  for (const std::string& line : outer_logs) {
    if (!Contains(line, "op=MultiPut")) continue;
    EXPECT_TRUE(Contains(line, "rpc"));  // the hop shows as a client span
    const size_t at = line.find("id=");
    ASSERT_NE(at, std::string::npos);
    outer_id = line.substr(at, line.find(' ', at) - at);
  }
  ASSERT_FALSE(outer_id.empty());
  bool stitched = false;
  for (const std::string& line : inner_logs) {
    if (Contains(line, "op=MultiPut") && Contains(line, outer_id + " ")) {
      stitched = true;
    }
  }
  EXPECT_TRUE(stitched);
}

// --- caching backend -----------------------------------------------------

TEST(CachingBackendTest, HitsMissesAndWriteInvalidation) {
  std::unique_ptr<KvBackend> cached;
  ASSERT_TRUE(
      MakeCachingBackend(MakeInMemory(), /*capacity=*/256, &cached).ok());
  EXPECT_EQ(cached->name(), "Cached(InMemory)");

  const Key key = 11;
  std::vector<float> row(8, 4.0f);
  ASSERT_TRUE(cached->MultiPut({&key, 1}, row.data()).AllOk());

  MultiGetOptions untracked;
  untracked.untracked = true;
  std::vector<float> out(8, 0.0f);
  ASSERT_TRUE(cached->MultiGet({&key, 1}, out.data(), untracked).AllOk());
  EXPECT_EQ(out, row);  // miss: served by the inner store, fills the cache
  std::fill(out.begin(), out.end(), 0.0f);
  ASSERT_TRUE(cached->MultiGet({&key, 1}, out.data(), untracked).AllOk());
  EXPECT_EQ(out, row);  // hit: served by the cache

  auto count = [&](const std::string& name) {
    MetricsSink sink;
    cached->CollectMetrics(&sink);
    uint64_t total = 0;
    for (const MetricsSink::Sample& s : sink.samples()) {
      if (s.name == name) total += static_cast<uint64_t>(s.value);
    }
    return total;
  };
  EXPECT_EQ(count("mlkv_cache_hits_total"), 1u);
  EXPECT_EQ(count("mlkv_cache_misses_total"), 1u);

  // A write invalidates: the next read misses and sees the new value.
  std::vector<float> updated(8, 5.0f);
  ASSERT_TRUE(cached->MultiPut({&key, 1}, updated.data()).AllOk());
  ASSERT_TRUE(cached->MultiGet({&key, 1}, out.data(), untracked).AllOk());
  EXPECT_EQ(out, updated);
  EXPECT_EQ(count("mlkv_cache_misses_total"), 2u);
}

}  // namespace
}  // namespace obs
}  // namespace mlkv
