// TinyLFU frequency-sketch and admission-controlled EmbeddingCache tests:
// doorkeeper absorption, count saturation, the halving/reset aging step,
// strict-win admission, and the headline behavior — a TinyLFU-guarded
// cache holds its hot working set through a one-hit-wonder scan that
// washes a plain LRU cache out.
#include <gtest/gtest.h>

#include <vector>

#include "common/hash.h"
#include "mlkv/embedding_cache.h"
#include "serve/tinylfu.h"

namespace mlkv {
namespace {

TEST(TinyLfuTest, DoorkeeperAbsorbsFirstAccess) {
  TinyLfu s(1024);
  const uint64_t h = Hash64(42);
  EXPECT_EQ(s.Estimate(h), 0u);
  s.RecordAccess(h);
  EXPECT_EQ(s.Estimate(h), 1u);  // doorkeeper bit only, counters untouched
  s.RecordAccess(h);
  EXPECT_EQ(s.Estimate(h), 2u);  // first sketch bump
  EXPECT_EQ(s.accesses(), 2u);
}

TEST(TinyLfuTest, EstimateSaturatesAtSixteen) {
  TinyLfu s(1024);
  const uint64_t h = Hash64(7);
  for (int i = 0; i < 64; ++i) s.RecordAccess(h);
  // 4-bit counters cap at 15; the doorkeeper contributes the final +1.
  EXPECT_EQ(s.Estimate(h), 16u);
}

TEST(TinyLfuTest, CountersRoundUpToPowerOfTwoMinimum64) {
  TinyLfu small(1);
  EXPECT_EQ(small.counters_per_row(), 64u);
  TinyLfu odd(100);
  EXPECT_EQ(odd.counters_per_row(), 128u);
  // Default window derives from the rounded counter count.
  EXPECT_EQ(odd.sample_window(), 128u * 8u);
}

TEST(TinyLfuTest, AgingHalvesCountersAndClearsDoorkeeper) {
  TinyLfu s(64, /*sample_window=*/64);
  const uint64_t hot = Hash64(1);
  for (int i = 0; i < 20; ++i) s.RecordAccess(hot);
  ASSERT_EQ(s.Estimate(hot), 16u);  // saturated: all four rows at 15
  // Push the window over with distinct cold keys. Their first sightings
  // are doorkeeper-only, so they cannot disturb hot's counters.
  uint64_t k = 1000;
  while (s.agings() == 0) s.RecordAccess(Hash64(k++));
  EXPECT_EQ(s.agings(), 1u);
  // Every row held 15 -> halved to 7; the doorkeeper's +1 is gone.
  EXPECT_EQ(s.Estimate(hot), 7u);
}

TEST(TinyLfuTest, AdmitRequiresStrictWin) {
  TinyLfu s(1024);
  const uint64_t hot = Hash64(10);
  const uint64_t cold = Hash64(20);
  const uint64_t fresh = Hash64(30);
  for (int i = 0; i < 8; ++i) s.RecordAccess(hot);
  s.RecordAccess(cold);
  EXPECT_TRUE(s.Admit(hot, cold));
  EXPECT_FALSE(s.Admit(cold, hot));
  // A never-seen candidate (estimate 0) loses to any key with history,
  // and ties keep the incumbent — the one-hit-wonder guarantee.
  EXPECT_FALSE(s.Admit(fresh, cold));
  s.RecordAccess(fresh);
  EXPECT_FALSE(s.Admit(fresh, cold));  // 1 vs 1: tie, incumbent stays
}

// Serving-loop model: consult the cache, fill on miss (what the server's
// cache_on_miss path does). Returns the number of hot keys still cached
// after a sustained scan of one-hit wonders competes for the same slots.
uint64_t HotSurvivors(CacheAdmission admission, uint64_t* rejects) {
  constexpr uint32_t kDim = 4;
  constexpr Key kHot = 64;
  EmbeddingCache cache(/*capacity=*/kHot, kDim, /*shards=*/1, admission);
  std::vector<float> row(kDim, 1.0f);
  std::vector<float> out(kDim);
  auto touch = [&](Key k) {
    if (!cache.Get(k, out.data())) cache.Put(k, row.data());
  };
  for (int round = 0; round < 256; ++round) {
    for (Key h = 0; h < kHot; ++h) touch(h);
    for (Key w = 0; w < 32; ++w) touch(100000 + round * 32 + w);
  }
  uint64_t survivors = 0;
  for (Key h = 0; h < kHot; ++h) survivors += cache.Get(h, out.data());
  *rejects = cache.stats().admission_rejects;
  return survivors;
}

TEST(TinyLfuCacheTest, AdmissionIsScanResistantWhereLruIsNot) {
  uint64_t lru_rejects = 0;
  uint64_t tlfu_rejects = 0;
  const uint64_t lru = HotSurvivors(CacheAdmission::kLru, &lru_rejects);
  const uint64_t tlfu = HotSurvivors(CacheAdmission::kTinyLfu, &tlfu_rejects);
  // LRU: each round's 32 wonders displace the 32 least-recent hot keys.
  EXPECT_EQ(lru, 32u);
  EXPECT_EQ(lru_rejects, 0u);
  // TinyLFU: wonders (estimate <= 1) lose to hot incumbents. A handful of
  // admissions right after an aging reset are legitimate, hence >= 56
  // rather than all 64.
  EXPECT_GE(tlfu, 56u);
  EXPECT_GT(tlfu_rejects, 0u);
  EXPECT_GE(tlfu, lru + lru / 2);  // the >=1.3x separation the docs claim
}

TEST(TinyLfuCacheTest, RejectedFillLeavesVictimReadable) {
  constexpr uint32_t kDim = 2;
  EmbeddingCache cache(/*capacity=*/2, kDim, /*shards=*/1,
                       CacheAdmission::kTinyLfu);
  std::vector<float> a = {1.0f, 1.5f};
  std::vector<float> b = {2.0f, 2.5f};
  std::vector<float> c = {3.0f, 3.5f};
  std::vector<float> out(kDim);
  // Earn key 1 and 2 some frequency, then fill the two slots.
  for (int i = 0; i < 4; ++i) {
    cache.Get(1, out.data());
    cache.Get(2, out.data());
  }
  cache.Put(1, a.data());
  cache.Put(2, b.data());
  // Key 3 has no history: the fill must bounce and both incumbents stay.
  cache.Put(3, c.data());
  EXPECT_FALSE(cache.Get(3, out.data()));
  ASSERT_TRUE(cache.Get(1, out.data()));
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  ASSERT_TRUE(cache.Get(2, out.data()));
  EXPECT_FLOAT_EQ(out[1], 2.5f);
  EXPECT_EQ(cache.stats().admission_rejects, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TinyLfuCacheTest, EvictionRecyclesNodesAndKeepsValuesIntact) {
  // LRU mode exercises the extract/re-key eviction path: capacity stays
  // pinned, evictions count, and the surviving entries read back exactly.
  constexpr uint32_t kDim = 3;
  constexpr size_t kCap = 8;
  EmbeddingCache cache(kCap, kDim, /*shards=*/1, CacheAdmission::kLru);
  std::vector<float> out(kDim);
  for (Key k = 0; k < 64; ++k) {
    std::vector<float> v = {static_cast<float>(k), 0.5f, -1.0f};
    cache.Put(k, v.data());
    EXPECT_LE(cache.size(), kCap);
  }
  EXPECT_EQ(cache.stats().evictions, 64u - kCap);
  for (Key k = 64 - kCap; k < 64; ++k) {
    ASSERT_TRUE(cache.Get(k, out.data())) << "key " << k;
    EXPECT_FLOAT_EQ(out[0], static_cast<float>(k));
    EXPECT_FLOAT_EQ(out[2], -1.0f);
  }
  cache.ResetStats();
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.misses, 0u);
  EXPECT_EQ(st.evictions, 0u);
  // Cached rows survive a stats reset.
  EXPECT_EQ(cache.size(), kCap);
}

TEST(TinyLfuCacheTest, PutExistingUpdatesInPlace) {
  constexpr uint32_t kDim = 2;
  EmbeddingCache cache(/*capacity=*/4, kDim, /*shards=*/1,
                       CacheAdmission::kTinyLfu);
  std::vector<float> v1 = {1.0f, 2.0f};
  std::vector<float> v2 = {9.0f, 8.0f};
  std::vector<float> out(kDim);
  cache.Put(5, v1.data());
  cache.Put(5, v2.data());
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.Get(5, out.data()));
  EXPECT_FLOAT_EQ(out[0], 9.0f);
  EXPECT_FLOAT_EQ(out[1], 8.0f);
}

}  // namespace
}  // namespace mlkv
