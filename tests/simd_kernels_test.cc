// Parity suite for the vectorized kernel layer (common/simd.h,
// mlkv/optimizer_kernels.h): the AVX2/FMA (or NEON) tier must agree with
// the scalar reference for every optimizer kind across vector-width edge
// cases, and tiers a build lacks must fall back to scalar bit-exactly.
//
// Tolerance policy. The vector tiers contract multiply+add into FMA
// (one rounding where the scalar reference rounds twice), so a single
// element of a single step can differ by a few ULP; sqrt and div add at
// most half an ULP each. Those per-step differences then feed back
// through the optimizer state, so they compound over steps. Two bounds
// capture that, and a comparison passes if EITHER holds:
//
//   - ULP distance (kSingleStepUlp / kMultiStepUlp): the right metric
//     for well-scaled values, roughly 10x the worst drift observed
//     across libms.
//   - An absolute floor (kAbsTol): accumulators like Adam's first
//     moment are weighted sums of same-scale gradients that can nearly
//     cancel, leaving a tiny result whose ~1e-8 absolute rounding noise
//     is thousands of ULP — relative error is meaningless there, the
//     absolute error is still bounded by per-step rounding (~lr * 2^-24
//     per step).
//
// Any actual kernel bug (a lane shuffle, a wrong tail bound, state read
// from the wrong slot) produces errors at the data's own scale (~0.1-1),
// orders of magnitude above both bounds, so the slack costs no
// detection power.
#include <gtest/gtest.h>
#include <algorithm>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/simd.h"
#include "mlkv/optimizer.h"
#include "mlkv/optimizer_kernels.h"

namespace mlkv {
namespace {

constexpr int64_t kSingleStepUlp = 32;
constexpr int64_t kMultiStepUlp = 512;
constexpr float kAbsTol = 1e-6f;

// Vector-width edge cases: below/at/above the NEON (4) and AVX2 (8)
// widths, a mid-size dim with a tail (17), the common embedding dims
// (64), and a large odd dim whose tail exercises the last scalar loop.
constexpr uint32_t kDims[] = {1, 3, 7, 8, 17, 64, 127};

// The vector tier this build + CPU can actually run, independent of the
// MLKV_FORCE_SCALAR override — the parity tests exercise the vector code
// even when CI pins the process-wide dispatch to scalar.
simd::KernelTier VectorTier() {
#if MLKV_SIMD_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return simd::KernelTier::kAvx2Fma;
  }
#elif MLKV_SIMD_NEON
  return simd::KernelTier::kNeon;
#endif
  return simd::KernelTier::kScalar;
}

// Maps a float onto a monotonically ordered integer line so ULP distance
// is a plain subtraction; +0.0 and -0.0 both map to 0.
int64_t OrderedKey(float f) {
  int32_t i;
  std::memcpy(&i, &f, sizeof(i));
  return i < 0 ? -static_cast<int64_t>(i & 0x7fffffff) : int64_t{i};
}

int64_t UlpDistance(float a, float b) {
  return std::abs(OrderedKey(a) - OrderedKey(b));
}

// The hybrid comparison from the tolerance policy above: close in ULP,
// or close in absolute terms (near-cancelled accumulators).
::testing::AssertionResult CloseEnough(float a, float b, int64_t max_ulp,
                                       float abs_tol) {
  if (UlpDistance(a, b) <= max_ulp || std::abs(a - b) <= abs_tol) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " vs " << b << " (ulp=" << UlpDistance(a, b)
         << ", abs=" << std::abs(a - b) << ")";
}

// Deterministic value stream (splitmix64-folded) in roughly [-1, 1].
float NextFloat(uint64_t* s) {
  *s += 0x9e3779b97f4a7c15ull;
  uint64_t z = *s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<float>(static_cast<int64_t>(z % 2000001) - 1000000) *
         1e-6f;
}

void Fill(std::vector<float>* v, uint64_t seed) {
  for (float& x : *v) x = NextFloat(&seed);
}

OptimizerConfig MakeConfig(OptimizerKind kind, float weight_decay) {
  OptimizerConfig cfg;
  cfg.kind = kind;
  cfg.lr = 0.05f;
  cfg.weight_decay = weight_decay;
  return cfg;
}

// Runs `steps` updates (fresh deterministic gradient per step) on both
// tiers from identical starting buffers and checks emb + state agree
// within `max_ulp` everywhere.
void ExpectParity(simd::KernelTier tier, const OptimizerConfig& cfg,
                  uint32_t dim, int steps, int64_t max_ulp) {
  const size_t state_n = OptimizerStateFloats(cfg.kind, dim);
  std::vector<float> emb_a(dim), emb_b(dim);
  std::vector<float> state_a(state_n, 0.0f), state_b(state_n, 0.0f);
  std::vector<float> grad(dim);
  Fill(&emb_a, 1 + dim);
  emb_b = emb_a;

  for (int step = 0; step < steps; ++step) {
    Fill(&grad, 1000 + dim * 131 + static_cast<uint64_t>(step));
    ApplyOptimizerUpdateScalar(cfg, dim, emb_a.data(),
                               state_n ? state_a.data() : nullptr, grad.data());
    ApplyOptimizerUpdateWithTier(tier, cfg, dim, emb_b.data(),
                                 state_n ? state_b.data() : nullptr,
                                 grad.data());
  }
  for (uint32_t d = 0; d < dim; ++d) {
    EXPECT_TRUE(CloseEnough(emb_a[d], emb_b[d], max_ulp, kAbsTol))
        << OptimizerKindName(cfg.kind) << " dim=" << dim << " emb[" << d
        << "]";
  }
  for (size_t i = 0; i < state_n; ++i) {
    EXPECT_TRUE(CloseEnough(state_a[i], state_b[i], max_ulp, kAbsTol))
        << OptimizerKindName(cfg.kind) << " dim=" << dim << " state[" << i
        << "]";
  }
}

constexpr OptimizerKind kKinds[] = {OptimizerKind::kSgd,
                                    OptimizerKind::kMomentum,
                                    OptimizerKind::kAdagrad,
                                    OptimizerKind::kAdam};

TEST(SimdKernelParityTest, SingleStepAllKindsAllDims) {
  const simd::KernelTier tier = VectorTier();
  for (OptimizerKind kind : kKinds) {
    for (uint32_t dim : kDims) {
      ExpectParity(tier, MakeConfig(kind, 0.0f), dim, 1, kSingleStepUlp);
    }
  }
}

TEST(SimdKernelParityTest, MultiStepAllKindsAllDims) {
  const simd::KernelTier tier = VectorTier();
  for (OptimizerKind kind : kKinds) {
    for (uint32_t dim : kDims) {
      ExpectParity(tier, MakeConfig(kind, 0.0f), dim, 8, kMultiStepUlp);
    }
  }
}

TEST(SimdKernelParityTest, WeightDecayAllKinds) {
  // Weight decay folds the embedding into the gradient (g += wd*w), which
  // the vector tiers compute with one extra FMA — the classic contraction
  // divergence, so it gets its own sweep.
  const simd::KernelTier tier = VectorTier();
  for (OptimizerKind kind : kKinds) {
    for (uint32_t dim : kDims) {
      ExpectParity(tier, MakeConfig(kind, 0.01f), dim, 8, kMultiStepUlp);
    }
  }
}

TEST(SimdKernelParityTest, AdamBiasCorrectionEarlySteps) {
  // Steps 1-3 are where the bias correction terms (1 - beta^t) are
  // smallest and the m_hat / v_hat amplification largest; a kernel that
  // mishandles the shared step counter diverges immediately here.
  const simd::KernelTier tier = VectorTier();
  const OptimizerConfig cfg = MakeConfig(OptimizerKind::kAdam, 0.0f);
  for (uint32_t dim : kDims) {
    for (int steps = 1; steps <= 3; ++steps) {
      ExpectParity(tier, cfg, dim, steps, kSingleStepUlp * steps);
    }
  }
}

TEST(SimdKernelParityTest, AdamStepCounterAdvancesOncePerUpdate) {
  const simd::KernelTier tier = VectorTier();
  const OptimizerConfig cfg = MakeConfig(OptimizerKind::kAdam, 0.0f);
  constexpr uint32_t kDim = 8;
  std::vector<float> emb(kDim, 0.5f), grad(kDim, 0.1f);
  std::vector<float> state(OptimizerStateFloats(OptimizerKind::kAdam, kDim),
                           0.0f);
  for (int step = 1; step <= 4; ++step) {
    ApplyOptimizerUpdateWithTier(tier, cfg, kDim, emb.data(), state.data(),
                                 grad.data());
    EXPECT_FLOAT_EQ(state[2 * kDim], static_cast<float>(step));
  }
}

TEST(SimdKernelParityTest, UnavailableTierFallsBackToScalarExactly) {
  // A tier this build lacks must route to the scalar reference with no
  // numeric difference at all — pick whichever vector tier cannot exist
  // in this binary.
#if MLKV_SIMD_X86
  const simd::KernelTier missing = simd::KernelTier::kNeon;
#else
  const simd::KernelTier missing = simd::KernelTier::kAvx2Fma;
#endif
  for (OptimizerKind kind : kKinds) {
    ExpectParity(missing, MakeConfig(kind, 0.01f), 64, 8, /*max_ulp=*/0);
  }
}

TEST(SimdKernelParityTest, DispatchedEntryMatchesActiveTier) {
  // ApplyOptimizerUpdateKernel must be exactly ApplyOptimizerUpdateWithTier
  // on the process-wide tier, whatever that tier resolved to.
  const simd::KernelTier active = simd::ActiveKernelTier();
  const OptimizerConfig cfg = MakeConfig(OptimizerKind::kAdagrad, 0.0f);
  constexpr uint32_t kDim = 17;
  std::vector<float> emb_a(kDim), emb_b(kDim), grad(kDim);
  std::vector<float> state_a(kDim, 0.0f), state_b(kDim, 0.0f);
  Fill(&emb_a, 7);
  emb_b = emb_a;
  Fill(&grad, 11);
  ApplyOptimizerUpdateKernel(cfg, kDim, emb_a.data(), state_a.data(),
                             grad.data());
  ApplyOptimizerUpdateWithTier(active, cfg, kDim, emb_b.data(), state_b.data(),
                               grad.data());
  EXPECT_EQ(std::memcmp(emb_a.data(), emb_b.data(), kDim * sizeof(float)), 0);
  EXPECT_EQ(
      std::memcmp(state_a.data(), state_b.data(), kDim * sizeof(float)), 0);
}

// --------------------------------------------------------------------------
// Bulk primitives: CopyFloats is memcpy (exact by definition);
// AccumulateFloats is elementwise with no reassociation, so it must be
// bit-exact against the plain loop; SubScaled may contract into FMA, so
// one rounding's worth of slack.
// --------------------------------------------------------------------------

constexpr size_t kBulkSizes[] = {0, 1, 3, 7, 8, 17, 64, 127, 1000};

TEST(SimdBulkPrimitivesTest, CopyFloatsExact) {
  for (size_t n : kBulkSizes) {
    std::vector<float> src(n), dst(n, -1.0f);
    Fill(&src, n + 1);
    simd::CopyFloats(dst.data(), src.data(), n);
    EXPECT_TRUE(std::equal(dst.begin(), dst.end(), src.begin()));
  }
}

TEST(SimdBulkPrimitivesTest, AccumulateFloatsMatchesScalarExactly) {
  for (size_t n : kBulkSizes) {
    std::vector<float> src(n), a(n), b(n);
    Fill(&src, 2 * n + 1);
    Fill(&a, 3 * n + 1);
    b = a;
    for (size_t i = 0; i < n; ++i) a[i] += src[i];
    simd::AccumulateFloats(b.data(), src.data(), n);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "n=" << n;
  }
}

TEST(SimdBulkPrimitivesTest, SubScaledWithinOneUlp) {
  for (size_t n : kBulkSizes) {
    std::vector<float> src(n), a(n), b(n);
    Fill(&src, 5 * n + 1);
    Fill(&a, 7 * n + 1);
    b = a;
    const float lr = 0.05f;
    for (size_t i = 0; i < n; ++i) a[i] -= lr * src[i];
    simd::SubScaled(b.data(), src.data(), lr, n);
    // One FMA contraction's worth of ULP slack; the absolute floor covers
    // elements where dst nearly cancels against lr*src.
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(CloseEnough(a[i], b[i], 1, 1e-7f)) << "n=" << n
                                                     << " i=" << i;
    }
  }
}

// --------------------------------------------------------------------------
// Dispatch plumbing.
// --------------------------------------------------------------------------

TEST(SimdDispatchTest, ForceScalarOverride) {
  // DetectKernelTier re-reads the environment each call (only
  // ActiveKernelTier caches), so the override logic stays testable after
  // the process-wide choice froze. Restore whatever CI set afterwards.
  const char* prev = std::getenv("MLKV_FORCE_SCALAR");
  const std::string saved = prev ? prev : "";

  setenv("MLKV_FORCE_SCALAR", "1", 1);
  EXPECT_EQ(simd::DetectKernelTier(), simd::KernelTier::kScalar);
  setenv("MLKV_FORCE_SCALAR", "yes", 1);
  EXPECT_EQ(simd::DetectKernelTier(), simd::KernelTier::kScalar);
  // Exactly "0" and empty mean "not forced".
  setenv("MLKV_FORCE_SCALAR", "0", 1);
  EXPECT_EQ(simd::DetectKernelTier(), VectorTier());
  setenv("MLKV_FORCE_SCALAR", "", 1);
  EXPECT_EQ(simd::DetectKernelTier(), VectorTier());
  unsetenv("MLKV_FORCE_SCALAR");
  EXPECT_EQ(simd::DetectKernelTier(), VectorTier());

  if (prev) {
    setenv("MLKV_FORCE_SCALAR", saved.c_str(), 1);
  }
}

TEST(SimdDispatchTest, TierNamesStable) {
  EXPECT_STREQ(simd::KernelTierName(simd::KernelTier::kScalar), "scalar");
  EXPECT_STREQ(simd::KernelTierName(simd::KernelTier::kAvx2Fma), "avx2+fma");
  EXPECT_STREQ(simd::KernelTierName(simd::KernelTier::kNeon), "neon");
  // Wire-stable values (StatsSnapshot encodes the tier as a u8).
  EXPECT_EQ(static_cast<uint8_t>(simd::KernelTier::kScalar), 0);
  EXPECT_EQ(static_cast<uint8_t>(simd::KernelTier::kAvx2Fma), 1);
  EXPECT_EQ(static_cast<uint8_t>(simd::KernelTier::kNeon), 2);
}

}  // namespace
}  // namespace mlkv
