#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/ctr_gen.h"
#include "workloads/ebay_gen.h"
#include "workloads/graph_gen.h"
#include "workloads/kg_gen.h"
#include "workloads/ycsb.h"

namespace mlkv {
namespace {

TEST(YcsbTest, ReadWriteMixMatchesConfig) {
  YcsbConfig cfg;
  cfg.update_fraction = 0.5;
  YcsbWorkload w(cfg, 0);
  int reads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (w.Next().is_read()) ++reads;
  }
  EXPECT_NEAR(static_cast<double>(reads) / n, 0.5, 0.02);
}

TEST(YcsbTest, KeysWithinRangeAndDeterministic) {
  YcsbConfig cfg;
  cfg.num_keys = 1000;
  YcsbWorkload a(cfg, 3), b(cfg, 3), c(cfg, 4);
  bool differs = false;
  for (int i = 0; i < 1000; ++i) {
    const auto oa = a.Next();
    const auto ob = b.Next();
    EXPECT_LT(oa.key, 1000u);
    EXPECT_EQ(oa.key, ob.key) << "same thread id must replay identically";
    if (oa.key != c.Next().key) differs = true;
  }
  EXPECT_TRUE(differs) << "different thread ids must differ";
}


TEST(YcsbSuiteTest, StandardMixesMatchSpec) {
  struct Expect {
    char which;
    double read, update, insert, scan, rmw;
  };
  const Expect expectations[] = {
      {'A', 0.50, 0.50, 0.00, 0.00, 0.00},
      {'B', 0.95, 0.05, 0.00, 0.00, 0.00},
      {'C', 1.00, 0.00, 0.00, 0.00, 0.00},
      {'D', 0.95, 0.00, 0.05, 0.00, 0.00},
      {'E', 0.00, 0.00, 0.05, 0.95, 0.00},
      {'F', 0.50, 0.00, 0.00, 0.00, 0.50},
  };
  const int n = 30000;
  for (const auto& e : expectations) {
    YcsbWorkload w(YcsbStandardConfig(e.which, 10000), 0);
    int counts[5] = {0, 0, 0, 0, 0};
    for (int i = 0; i < n; ++i) {
      ++counts[static_cast<int>(w.Next().type)];
    }
    const double total = n;
    EXPECT_NEAR(counts[0] / total, e.read, 0.02) << e.which;
    EXPECT_NEAR(counts[1] / total, e.update, 0.02) << e.which;
    EXPECT_NEAR(counts[2] / total, e.insert, 0.02) << e.which;
    EXPECT_NEAR(counts[3] / total, e.scan, 0.02) << e.which;
    EXPECT_NEAR(counts[4] / total, e.rmw, 0.02) << e.which;
  }
}

TEST(YcsbSuiteTest, InsertKeysAreFreshAndThreadDisjoint) {
  const YcsbConfig cfg = YcsbStandardConfig('D', 1000);
  YcsbWorkload a(cfg, 0, 2), b(cfg, 1, 2);
  std::set<Key> seen;
  for (int i = 0; i < 5000; ++i) {
    for (auto* w : {&a, &b}) {
      const auto op = w->Next();
      if (op.type == YcsbOpType::kInsert) {
        EXPECT_GE(op.key, 1000u) << "inserts must be outside the preload";
        EXPECT_TRUE(seen.insert(op.key).second) << "duplicate insert key";
      }
    }
  }
  EXPECT_GT(seen.size(), 0u);
}

TEST(YcsbSuiteTest, LatestDistributionSkewsToRecentInserts) {
  const YcsbConfig cfg = YcsbStandardConfig('D', 10000);
  YcsbWorkload w(cfg, 0);
  // Warm up with traffic so inserts accumulate, then measure read skew.
  uint64_t recent_reads = 0, reads = 0;
  for (int i = 0; i < 60000; ++i) {
    const auto op = w.Next();
    if (op.type != YcsbOpType::kRead) continue;
    ++reads;
    // "Recent" = preload tail or any inserted key.
    if (op.key >= 9000) ++recent_reads;
  }
  ASSERT_GT(reads, 0u);
  // Under uniform sampling the tail would get ~10% + inserts; latest should
  // concentrate far more mass there.
  EXPECT_GT(static_cast<double>(recent_reads) / reads, 0.5);
}

TEST(YcsbSuiteTest, ScanLengthsWithinBounds) {
  YcsbConfig cfg = YcsbStandardConfig('E', 1000);
  cfg.max_scan_length = 25;
  YcsbWorkload w(cfg, 0);
  int scans = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto op = w.Next();
    if (op.type != YcsbOpType::kScan) continue;
    ++scans;
    EXPECT_GE(op.scan_length, 1u);
    EXPECT_LE(op.scan_length, 25u);
  }
  EXPECT_GT(scans, 4000);
}

TEST(YcsbTest, ZipfianSkewsUniformDoesnt) {
  YcsbConfig zcfg;
  zcfg.num_keys = 10000;
  zcfg.distribution = YcsbDistribution::kZipfian;
  YcsbWorkload z(zcfg, 0);
  YcsbConfig ucfg = zcfg;
  ucfg.distribution = YcsbDistribution::kUniform;
  YcsbWorkload u(ucfg, 0);
  std::map<Key, int> zc, uc;
  for (int i = 0; i < 50000; ++i) {
    zc[z.Next().key]++;
    uc[u.Next().key]++;
  }
  int zmax = 0, umax = 0;
  for (auto& [k, v] : zc) zmax = std::max(zmax, v);
  for (auto& [k, v] : uc) umax = std::max(umax, v);
  EXPECT_GT(zmax, umax * 10);
}

TEST(YcsbTest, ValueDeterministicPerKeyVersion) {
  YcsbConfig cfg;
  cfg.value_size = 32;
  YcsbWorkload w(cfg, 0);
  char a[32], b[32], c[32];
  w.FillValue(5, 1, a);
  w.FillValue(5, 1, b);
  w.FillValue(5, 2, c);
  EXPECT_EQ(std::memcmp(a, b, 32), 0);
  EXPECT_NE(std::memcmp(a, c, 32), 0);
}

TEST(CtrGenTest, SamplesAreWellFormed) {
  CtrConfig cfg;
  CtrGenerator gen(cfg);
  for (int i = 0; i < 1000; ++i) {
    const CtrSample s = gen.Next();
    ASSERT_EQ(s.keys.size(), static_cast<size_t>(cfg.num_fields));
    ASSERT_EQ(s.dense.size(), static_cast<size_t>(cfg.num_dense));
    EXPECT_TRUE(s.label == 0.0f || s.label == 1.0f);
    for (int f = 0; f < cfg.num_fields; ++f) {
      EXPECT_GE(s.keys[f], static_cast<Key>(f) * cfg.field_cardinality);
      EXPECT_LT(s.keys[f], static_cast<Key>(f + 1) * cfg.field_cardinality);
    }
  }
}

TEST(CtrGenTest, LabelsCorrelateWithPlantedModel) {
  // The planted model must make labels predictable from keys: the empirical
  // CTR conditioned on a hot key should differ across keys.
  CtrConfig cfg;
  cfg.num_fields = 2;
  cfg.field_cardinality = 50;
  cfg.label_noise = 0.0;
  CtrGenerator gen(cfg);
  std::map<Key, std::pair<int, int>> stats;  // key -> (clicks, total)
  for (int i = 0; i < 60000; ++i) {
    const CtrSample s = gen.Next();
    for (Key k : s.keys) {
      auto& [c, t] = stats[k];
      c += s.label > 0.5f;
      ++t;
    }
  }
  double min_ctr = 1.0, max_ctr = 0.0;
  for (auto& [k, ct] : stats) {
    if (ct.second < 300) continue;
    const double ctr = static_cast<double>(ct.first) / ct.second;
    min_ctr = std::min(min_ctr, ctr);
    max_ctr = std::max(max_ctr, ctr);
  }
  EXPECT_GT(max_ctr - min_ctr, 0.15)
      << "planted weights must induce key-dependent CTR";
}

TEST(CtrGenTest, FeaturePopularityIsSkewed) {
  CtrConfig cfg;
  CtrGenerator gen(cfg);
  std::map<Key, int> counts;
  for (int i = 0; i < 20000; ++i) {
    counts[gen.Next().keys[0]]++;
  }
  int maxc = 0;
  for (auto& [k, c] : counts) maxc = std::max(maxc, c);
  EXPECT_GT(maxc, 50) << "zipfian popularity expected";
}

TEST(KgGenTest, TriplesRespectClusterStructure) {
  KgConfig cfg;
  cfg.edge_noise = 0.0;
  KgGenerator gen(cfg);
  int consistent = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const KgTriple t = gen.Next();
    EXPECT_LT(t.head, cfg.num_entities);
    EXPECT_LT(t.tail, cfg.num_entities);
    EXPECT_LT(t.relation, cfg.num_relations);
    const int expect =
        (gen.ClusterOf(t.head) + gen.RelationShift(t.relation)) %
        cfg.num_clusters;
    if (gen.ClusterOf(t.tail) == expect) ++consistent;
  }
  // Rejection sampling is capped at 64 tries, so a small fraction of tails
  // fall outside the planted cluster even with zero edge noise.
  EXPECT_GT(consistent, n * 0.85) << "tails must follow planted clusters";
}

TEST(KgGenTest, HeadsAreSkewed) {
  KgGenerator gen(KgConfig{});
  std::map<Key, int> counts;
  for (int i = 0; i < 20000; ++i) counts[gen.Next().head]++;
  int maxc = 0;
  for (auto& [k, c] : counts) maxc = std::max(maxc, c);
  EXPECT_GT(maxc, 20);
}

TEST(GraphGenTest, NeighborsAreMostlySameCommunity) {
  GraphConfig cfg;
  cfg.label_noise = 0.0;
  GraphGenerator gen(cfg);
  int same = 0, total = 0;
  std::vector<Key> nbrs;
  for (int i = 0; i < 500; ++i) {
    const Key node = gen.SampleTrainNode();
    gen.SampleNeighbors(node, &nbrs);
    ASSERT_EQ(nbrs.size(), static_cast<size_t>(cfg.fanout));
    for (Key n : nbrs) {
      EXPECT_LT(n, cfg.num_nodes);
      same += gen.CommunityOf(n) == gen.CommunityOf(node);
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(same) / total, 0.6);
}

TEST(GraphGenTest, HubBiasConcentratesOnLowIds) {
  GraphGenerator gen(GraphConfig{});
  std::vector<Key> nbrs;
  uint64_t low = 0, total = 0;
  for (int i = 0; i < 500; ++i) {
    gen.SampleNeighbors(gen.SampleTrainNode(), &nbrs);
    for (Key n : nbrs) {
      low += n < GraphConfig{}.num_nodes / 4;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(low) / total, 0.4)
      << "first quartile of ids should absorb ~half the edges";
}

TEST(EbayGenTest, LabelsCorrelateWithRiskyEntities) {
  EbayConfig cfg;
  cfg.label_noise = 0.0;
  EbayGenerator gen(cfg);
  int risky_touch_label = 0, risky_touch = 0;
  int clean_label = 0, clean = 0;
  for (int i = 0; i < 20000; ++i) {
    const EbaySample s = gen.Next();
    bool touches = false;
    for (Key e : s.entities) {
      ASSERT_GE(e, cfg.num_transactions);
      if (gen.IsRiskyEntity(e - cfg.num_transactions)) touches = true;
    }
    if (touches) {
      ++risky_touch;
      risky_touch_label += s.label > 0.5f;
    } else {
      ++clean;
      clean_label += s.label > 0.5f;
    }
  }
  ASSERT_GT(risky_touch, 100);
  ASSERT_GT(clean, 100);
  const double risky_rate = static_cast<double>(risky_touch_label) /
                            risky_touch;
  const double clean_rate = static_cast<double>(clean_label) / clean;
  EXPECT_GT(risky_rate, clean_rate + 0.3);
  EXPECT_EQ(clean_rate, 0.0) << "without noise, clean transactions are clean";
}

TEST(EbayGenTest, TripartiteConcentratesEntityAccess) {
  EbayConfig cfg;
  cfg.tripartite = true;
  EbayGenerator gen(cfg);
  // With tripartite hops derived from the first entity, entities within a
  // sample are a deterministic function of entity[0].
  const EbaySample a = gen.Next();
  EbayGenerator gen2(cfg);
  const EbaySample b = gen2.Next();
  EXPECT_EQ(a.entities, b.entities) << "same seed, same derived hops";
}

}  // namespace
}  // namespace mlkv
