// Cluster mode: routing-map construction and wire fidelity, scatter/gather
// parity against a single sharded store, primary→replica log shipping, and
// failover (dead primary: reads survive via the replica, writes degrade to
// per-key failures instead of whole-batch aborts).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "backend/delayed_backend.h"
#include "backend/kv_backend.h"
#include "cluster/cluster_backend.h"
#include "cluster/cluster_map.h"
#include "cluster/hot_keys.h"
#include "cluster/replicator.h"
#include "common/hash.h"
#include "io/temp_dir.h"
#include "net/kv_server.h"
#include "net/remote_backend.h"

namespace mlkv {
namespace {

using cluster::BuildClusterMap;
using cluster::ClusterBackend;
using cluster::ClusterMap;
using cluster::ReadPreference;
using cluster::Replicator;

// --- ClusterMap ----------------------------------------------------------

TEST(ClusterMapTest, BuildSpreadsPartitionsRoundRobin) {
  ClusterMap m;
  ASSERT_TRUE(BuildClusterMap({"a:1", "b:2"}, {}, /*route_bits=*/2,
                              ReadPreference::kPrimary, 5, &m)
                  .ok());
  EXPECT_EQ(m.epoch, 5u);
  EXPECT_EQ(m.route_bits, 2u);
  EXPECT_EQ(m.num_partitions(), 4u);
  ASSERT_EQ(m.endpoints.size(), 2u);
  EXPECT_EQ(m.partitions[0].primary, 0u);
  EXPECT_EQ(m.partitions[1].primary, 1u);
  EXPECT_EQ(m.partitions[2].primary, 0u);
  EXPECT_EQ(m.partitions[3].primary, 1u);
  EXPECT_TRUE(m.Validate().ok());
}

TEST(ClusterMapTest, BuildDerivesRouteBitsAndAttachesReplicas) {
  ClusterMap m;
  // 3 primaries -> ceil(log2(3)) = 2 route bits; server 0 has a replica.
  ASSERT_TRUE(BuildClusterMap({"a:1", "b:2", "c:3"}, {"r:9", "", ""},
                              /*route_bits=*/0, ReadPreference::kReplica, 1,
                              &m)
                  .ok());
  EXPECT_EQ(m.route_bits, 2u);
  ASSERT_EQ(m.endpoints.size(), 4u);  // 3 primaries + 1 replica
  EXPECT_EQ(m.read_preference, ReadPreference::kReplica);
  const uint32_t replica_idx = static_cast<uint32_t>(m.FindEndpoint("r:9"));
  for (uint32_t p = 0; p < m.num_partitions(); ++p) {
    if (m.partitions[p].primary == 0) {
      ASSERT_EQ(m.partitions[p].replicas.size(), 1u) << "partition " << p;
      EXPECT_EQ(m.partitions[p].replicas[0], replica_idx);
    } else {
      EXPECT_TRUE(m.partitions[p].replicas.empty()) << "partition " << p;
    }
  }
}

TEST(ClusterMapTest, BuildRejectsBadShapes) {
  ClusterMap m;
  EXPECT_FALSE(BuildClusterMap({}, {}, 0, ReadPreference::kPrimary, 1, &m)
                   .ok());
  EXPECT_FALSE(BuildClusterMap({"a:1"}, {"r:1", "r:2"}, 0,
                               ReadPreference::kPrimary, 1, &m)
                   .ok());
  EXPECT_FALSE(BuildClusterMap({"a:1"}, {}, 17, ReadPreference::kPrimary, 1,
                               &m)
                   .ok());
  // More primaries than partitions: some servers would own nothing.
  EXPECT_FALSE(BuildClusterMap({"a:1", "b:2", "c:3"}, {}, /*route_bits=*/1,
                               ReadPreference::kPrimary, 1, &m)
                   .ok());
}

TEST(ClusterMapTest, OwnershipFollowsPartitionAssignment) {
  ClusterMap m;
  ASSERT_TRUE(BuildClusterMap({"a:1", "b:2"}, {"r:9", ""}, 1,
                              ReadPreference::kPrimary, 1, &m)
                  .ok());
  const uint32_t replica_idx = static_cast<uint32_t>(m.FindEndpoint("r:9"));
  for (Key k = 0; k < 64; ++k) {
    const size_t p = m.PartitionOf(k);
    const uint32_t owner = m.partitions[p].primary;
    EXPECT_TRUE(m.OwnsForWrite(owner, k));
    EXPECT_FALSE(m.OwnsForWrite(1 - owner, k));
    EXPECT_TRUE(m.OwnsForRead(owner, k));
    EXPECT_EQ(m.OwnsForRead(replica_idx, k), owner == 0u);
    EXPECT_FALSE(m.OwnsForWrite(replica_idx, k));
  }
}

TEST(ClusterMapTest, EncodeDecodeRoundTrips) {
  ClusterMap m;
  ASSERT_TRUE(BuildClusterMap({"host-a:7700", "host-b:7701"}, {"rep:7900", ""},
                              2, ReadPreference::kReplica, 42, &m)
                  .ok());
  net::PayloadWriter w;
  EncodeClusterMap(m, &w);
  net::PayloadReader r(w.bytes().data(), w.bytes().size());
  ClusterMap out;
  ASSERT_TRUE(DecodeClusterMap(&r, &out).ok());
  EXPECT_EQ(out.epoch, m.epoch);
  EXPECT_EQ(out.route_bits, m.route_bits);
  EXPECT_EQ(out.read_preference, m.read_preference);
  EXPECT_EQ(out.table, m.table);
  EXPECT_EQ(out.endpoints, m.endpoints);
  ASSERT_EQ(out.partitions.size(), m.partitions.size());
  for (size_t p = 0; p < m.partitions.size(); ++p) {
    EXPECT_EQ(out.partitions[p].primary, m.partitions[p].primary);
    EXPECT_EQ(out.partitions[p].replicas, m.partitions[p].replicas);
  }
}

TEST(ClusterMapTest, DecodeRejectsTruncation) {
  ClusterMap m;
  ASSERT_TRUE(BuildClusterMap({"a:1", "b:2"}, {}, 1, ReadPreference::kPrimary,
                              1, &m)
                  .ok());
  net::PayloadWriter w;
  EncodeClusterMap(m, &w);
  for (size_t cut = 0; cut + 1 < w.bytes().size(); cut += 3) {
    net::PayloadReader r(w.bytes().data(), cut);
    ClusterMap out;
    EXPECT_FALSE(DecodeClusterMap(&r, &out).ok()) << "cut " << cut;
  }
}

TEST(ClusterMapTest, MutualReplicasReuseEndpointSlots) {
  // Each primary replicates the other: a replica address already present
  // must resolve to the existing endpoint index, not a duplicate slot —
  // one server is one endpoint, or its self-identification (and with it
  // read-ownership enforcement) splits across slots.
  ClusterMap m;
  ASSERT_TRUE(BuildClusterMap({"a:1", "b:2"}, {"b:2", "a:1"}, 1,
                              ReadPreference::kPrimary, 1, &m)
                  .ok());
  ASSERT_EQ(m.endpoints.size(), 2u);
  EXPECT_EQ(m.partitions[0].replicas, std::vector<uint32_t>{1u});
  EXPECT_EQ(m.partitions[1].replicas, std::vector<uint32_t>{0u});
  for (Key k = 0; k < 32; ++k) {
    EXPECT_TRUE(m.OwnsForRead(0, k));
    EXPECT_TRUE(m.OwnsForRead(1, k));
    EXPECT_NE(m.OwnsForWrite(0, k), m.OwnsForWrite(1, k));
  }
  // A primary listed as its own replica adds nothing and is dropped.
  ClusterMap self;
  ASSERT_TRUE(BuildClusterMap({"a:1"}, {"a:1"}, 0, ReadPreference::kPrimary,
                              1, &self)
                  .ok());
  EXPECT_EQ(self.endpoints.size(), 1u);
  EXPECT_TRUE(self.partitions[0].replicas.empty());
}

// --- hot-key tracker -----------------------------------------------------

TEST(HotKeyTrackerTest, RepeatKeysRankIntoTheHotSet) {
  cluster::HotKeyTracker t(/*top_k=*/2, /*refresh_interval=*/64);
  EXPECT_TRUE(t.hot()->keys.empty());
  for (int round = 0; round < 8; ++round) {
    std::vector<Key> batch = {7, 9};
    for (Key n = 0; n < 62; ++n) {
      batch.push_back(10000 + round * 62 + n);  // one-hit noise
    }
    t.RecordReads(batch);
  }
  EXPECT_GE(t.refreshes(), 1u);
  auto hot = t.hot();
  EXPECT_TRUE(hot->contains(7));
  EXPECT_TRUE(hot->contains(9));
  EXPECT_LE(hot->keys.size(), 2u);
  EXPECT_FALSE(hot->contains(10000));
}

// --- cluster harness -----------------------------------------------------

struct TestServer {
  std::unique_ptr<net::KvServer> server;
  std::string addr;
};

TestServer StartServer(const std::string& dir, uint32_t shard_bits,
                       BackendKind kind = BackendKind::kFaster) {
  BackendConfig cfg;
  cfg.dir = dir;
  cfg.dim = 8;
  cfg.buffer_bytes = 4ull << 20;
  cfg.staleness_bound = UINT32_MAX - 1;
  cfg.shard_bits = shard_bits;
  std::unique_ptr<KvBackend> engine;
  EXPECT_TRUE(MakeBackend(kind, cfg, &engine).ok());
  net::KvServerOptions so;
  so.num_workers = 6;
  TestServer t;
  t.server = std::make_unique<net::KvServer>(std::move(engine), so);
  EXPECT_TRUE(t.server->Start().ok());
  t.addr = t.server->addr();
  return t;
}

// --- scatter/gather parity ----------------------------------------------

// The cluster is a layout knob, not a semantic one: a 2-server cluster
// (each server one ShardedStore) must produce byte-identical rows and
// per-key codes to a single in-process store driven through the same op
// sequence. Valid because conformance already pins results to be
// shard-layout-independent.
TEST(ClusterParityTest, ByteIdenticalToSingleShardedStore) {
  TempDir dir;
  BackendConfig cfg;
  cfg.dir = dir.File("single");
  cfg.dim = 8;
  cfg.buffer_bytes = 4ull << 20;
  cfg.staleness_bound = UINT32_MAX - 1;
  cfg.shard_bits = 2;
  std::unique_ptr<KvBackend> single;
  ASSERT_TRUE(MakeBackend(BackendKind::kFaster, cfg, &single).ok());

  TestServer s0 = StartServer(dir.File("srv0"), /*shard_bits=*/1);
  TestServer s1 = StartServer(dir.File("srv1"), /*shard_bits=*/1);
  auto map = std::make_shared<ClusterMap>();
  ASSERT_TRUE(BuildClusterMap({s0.addr, s1.addr}, {}, 1,
                              ReadPreference::kPrimary, 1, map.get())
                  .ok());
  s0.server->UpdateClusterMap(map, 0);
  s1.server->UpdateClusterMap(map, 1);

  cluster::ClusterBackendOptions co;
  co.endpoints = {s0.addr, s1.addr};
  std::unique_ptr<KvBackend> clustered;
  ASSERT_TRUE(ClusterBackend::Connect(co, &clustered).ok());
  EXPECT_EQ(clustered->dim(), 8u);

  constexpr size_t kN = 400;
  std::vector<Key> keys(kN);
  for (size_t i = 0; i < kN; ++i) keys[i] = i * 13 + 1;
  keys[5] = keys[50];  // duplicates ride along
  auto expect_same = [](const BatchResult& a, const BatchResult& b,
                        const char* what) {
    EXPECT_EQ(a.codes, b.codes) << what;
    EXPECT_EQ(a.found, b.found) << what;
    EXPECT_EQ(a.missing, b.missing) << what;
    EXPECT_EQ(a.busy, b.busy) << what;
    EXPECT_EQ(a.failed, b.failed) << what;
  };

  std::vector<float> la(kN * 8), ca(kN * 8);
  expect_same(single->MultiGet(keys, la.data()),
              clustered->MultiGet(keys, ca.data()), "init MultiGet");
  EXPECT_EQ(la, ca);

  std::vector<float> grads(kN * 8);
  for (size_t i = 0; i < grads.size(); ++i) {
    grads[i] = static_cast<float>(i % 17) * 0.125f - 1.0f;
  }
  expect_same(single->MultiApplyGradient(keys, grads.data(), 0.05f),
              clustered->MultiApplyGradient(keys, grads.data(), 0.05f),
              "MultiApplyGradient");

  std::vector<float> values(kN * 8);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i) * 0.5f;
  }
  expect_same(single->MultiPut({keys.data(), 128}, values.data()),
              clustered->MultiPut({keys.data(), 128}, values.data()),
              "MultiPut");

  std::vector<Key> probe(keys.begin(), keys.begin() + 200);
  for (size_t i = 0; i < probe.size(); i += 3) probe[i] = 1000000 + i;
  MultiGetOptions no_init;
  no_init.init_missing = false;
  std::vector<float> lb(probe.size() * 8, -3.0f), cb(probe.size() * 8, -3.0f);
  expect_same(single->MultiGet(probe, lb.data(), no_init),
              clustered->MultiGet(probe, cb.data(), no_init),
              "mixed MultiGet");
  EXPECT_EQ(lb, cb);

  clustered.reset();
  s0.server->Stop();
  s1.server->Stop();
}

// --- replication ---------------------------------------------------------

TEST(ReplicationTest, ReplicaConvergesToPrimaryAndResumes) {
  TempDir dir;
  TestServer primary = StartServer(dir.File("primary"), /*shard_bits=*/1);

  BackendConfig rcfg;
  rcfg.dir = dir.File("replica");
  rcfg.dim = 8;
  rcfg.buffer_bytes = 4ull << 20;
  rcfg.staleness_bound = UINT32_MAX - 1;
  rcfg.shard_bits = 1;
  std::unique_ptr<KvBackend> replica;
  ASSERT_TRUE(MakeBackend(BackendKind::kFaster, rcfg, &replica).ok());

  net::RemoteBackendOptions ro;
  ro.addr = primary.addr;
  std::unique_ptr<KvBackend> writer;
  ASSERT_TRUE(net::RemoteBackend::Connect(ro, &writer).ok());

  constexpr size_t kN = 300;
  std::vector<Key> keys(kN);
  std::vector<float> values(kN * 8);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = i * 7 + 3;
    for (int d = 0; d < 8; ++d) values[i * 8 + d] = i * 10.0f + d;
  }
  ASSERT_TRUE(writer->MultiPut(keys, values.data()).AllOk());

  cluster::ReplicatorOptions opts;
  opts.primary_addr = primary.addr;
  opts.state_path = dir.File("replica.state");
  {
    Replicator rep(replica.get(), opts);
    ASSERT_TRUE(rep.Start().ok());
    ASSERT_TRUE(rep.WaitCaughtUp(20000));
    const cluster::ReplicationProgress p = rep.progress();
    EXPECT_TRUE(p.connected);
    EXPECT_GE(p.replicated_records, kN);
    EXPECT_EQ(p.replica_lag_records, 0u);
    rep.Stop();
  }
  std::vector<float> out(8);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(replica->PeekEmbedding(keys[i], out.data()).ok()) << i;
    for (int d = 0; d < 8; ++d) {
      ASSERT_EQ(out[d], values[i * 8 + d]) << "key " << keys[i];
    }
  }

  // More writes while the replicator is down; a restarted replicator picks
  // up from the persisted resume tokens and ships only the delta.
  for (size_t i = 0; i < kN; ++i) values[i * 8] += 1000.0f;
  ASSERT_TRUE(writer->MultiPut(keys, values.data()).AllOk());
  Replicator rep2(replica.get(), opts);
  ASSERT_TRUE(rep2.Start().ok());
  ASSERT_TRUE(rep2.WaitCaughtUp(20000));
  // Resume means no full replay: the second pass ships about one update
  // per key, not the whole history again.
  EXPECT_LE(rep2.progress().replicated_records, 2 * kN);
  rep2.Stop();
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(replica->PeekEmbedding(keys[i], out.data()).ok()) << i;
    ASSERT_EQ(out[0], values[i * 8]) << "key " << keys[i];
  }

  writer.reset();
  primary.server->Stop();
}

// --- failover ------------------------------------------------------------

TEST(ClusterFailoverTest, ReadsSurvivePrimaryLossWritesDegradePerKey) {
  TempDir dir;
  TestServer p0 = StartServer(dir.File("p0"), 1);
  TestServer p1 = StartServer(dir.File("p1"), 1);
  TestServer rep = StartServer(dir.File("rep"), 1);

  // rep replicates p0 and serves partition-0 reads when p0 is gone.
  auto map = std::make_shared<ClusterMap>();
  ASSERT_TRUE(BuildClusterMap({p0.addr, p1.addr}, {rep.addr, ""}, 1,
                              ReadPreference::kPrimary, 1, map.get())
                  .ok());
  p0.server->UpdateClusterMap(map, 0);
  p1.server->UpdateClusterMap(map, 1);
  rep.server->UpdateClusterMap(
      map, static_cast<uint32_t>(map->FindEndpoint(rep.addr)));

  cluster::ReplicatorOptions ropts;
  ropts.primary_addr = p0.addr;
  ropts.poll_interval_ms = 5;
  Replicator replicator(rep.server->backend(), ropts);
  ASSERT_TRUE(replicator.Start().ok());

  cluster::ClusterBackendOptions co;
  co.endpoints = {p0.addr, p1.addr};
  std::unique_ptr<ClusterBackend> client;
  ASSERT_TRUE(ClusterBackend::Connect(co, &client).ok());

  constexpr size_t kN = 200;
  std::vector<Key> keys(kN);
  std::vector<float> values(kN * 8);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = i + 1;
    for (int d = 0; d < 8; ++d) values[i * 8 + d] = i * 2.0f + d;
  }
  ASSERT_TRUE(client->MultiPut(keys, values.data()).AllOk());
  {
    const bool caught = replicator.WaitCaughtUp(20000);
    const cluster::ReplicationProgress p = replicator.progress();
    ASSERT_TRUE(caught) << "connected=" << p.connected
                        << " polls=" << p.polls
                        << " replicated=" << p.replicated_records
                        << " lag=" << p.replica_lag_records
                        << " apply_failures=" << p.apply_failures
                        << " reconnects=" << p.reconnects;
  }
  replicator.Stop();  // final state shipped; now kill the primary

  p0.server->Stop();

  // Reads: partition-0 sub-batches fail over to the replica; the whole
  // batch still serves every key with the written bytes.
  MultiGetOptions untracked;
  untracked.untracked = true;
  untracked.init_missing = false;
  std::vector<float> out(kN * 8, -1.0f);
  const BatchResult got = client->MultiGet(keys, out.data(), untracked);
  EXPECT_TRUE(got.AllOk()) << got.status().ToString();
  EXPECT_EQ(out, values);
  uint64_t failovers = 0;
  for (const cluster::EndpointStats& s : client->endpoint_stats()) {
    if (s.addr == p0.addr) failovers = s.failovers;
  }
  EXPECT_GT(failovers, 0u) << "partition-0 reads should have failed over";

  // Writes: no blind retry on another server — partition-0 keys report
  // per-key failures, partition-1 keys still land.
  const BatchResult put = client->MultiPut(keys, values.data());
  EXPECT_GT(put.failed, 0u);
  EXPECT_GT(put.found, 0u);
  const auto m = client->map();
  for (size_t i = 0; i < kN; ++i) {
    const bool on_dead = m->partitions[m->PartitionOf(keys[i])].primary == 0;
    if (on_dead) {
      EXPECT_NE(put.codes[i], Status::Code::kOk) << "key " << keys[i];
    } else {
      EXPECT_EQ(put.codes[i], Status::Code::kOk) << "key " << keys[i];
    }
  }

  client.reset();
  p1.server->Stop();
  rep.server->Stop();
}

// --- stale-epoch recovery ------------------------------------------------

TEST(ClusterEpochTest, StaleClientRefetchesMapAndRetriesRejectedKeys) {
  TempDir dir;
  TestServer s0 = StartServer(dir.File("s0"), 1);
  TestServer s1 = StartServer(dir.File("s1"), 1);

  // v1: s0 owns everything (s1 not even in the map yet).
  auto v1 = std::make_shared<ClusterMap>();
  ASSERT_TRUE(
      BuildClusterMap({s0.addr}, {}, 1, ReadPreference::kPrimary, 1, v1.get())
          .ok());
  s0.server->UpdateClusterMap(v1, 0);

  cluster::ClusterBackendOptions co;
  co.endpoints = {s0.addr, s1.addr};
  std::unique_ptr<ClusterBackend> client;
  ASSERT_TRUE(ClusterBackend::Connect(co, &client).ok());
  EXPECT_EQ(client->map()->epoch, 1u);

  constexpr size_t kN = 100;
  std::vector<Key> keys(kN);
  std::vector<float> values(kN * 8);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = i * 3 + 1;
    for (int d = 0; d < 8; ++d) values[i * 8 + d] = i + d * 0.5f;
  }
  ASSERT_TRUE(client->MultiPut(keys, values.data()).AllOk());

  // The map moves on: v2 splits the partitions across both servers. The
  // client still routes by v1 until s0 rejects the moved keys.
  auto v2 = std::make_shared<ClusterMap>();
  ASSERT_TRUE(BuildClusterMap({s0.addr, s1.addr}, {}, 1,
                              ReadPreference::kPrimary, 2, v2.get())
                  .ok());
  s0.server->UpdateClusterMap(v2, 0);
  s1.server->UpdateClusterMap(v2, 1);

  for (size_t i = 0; i < values.size(); ++i) values[i] += 100.0f;
  const BatchResult put = client->MultiPut(keys, values.data());
  EXPECT_TRUE(put.AllOk()) << put.status().ToString();
  EXPECT_EQ(client->map()->epoch, 2u) << "rejection should refetch the map";

  // Every key reads back through the new routing with the new bytes.
  MultiGetOptions no_init;
  no_init.init_missing = false;
  std::vector<float> out(kN * 8);
  const BatchResult got = client->MultiGet(keys, out.data(), no_init);
  EXPECT_TRUE(got.AllOk()) << got.status().ToString();
  EXPECT_EQ(out, values);

  client.reset();
  s0.server->Stop();
  s1.server->Stop();
}

// --- hedging and hot-key replication -------------------------------------

// Two loopback servers, each the primary of one partition and the replica
// of the other (the mutual-replica map above), both preloaded with the
// same rows so either side can serve any read. Server 0's engine sits
// behind a DelayedBackend with the caller's script.
struct HedgeCluster {
  TestServer s0, s1;
  DelayedBackend* slow = nullptr;  // server 0's decorator (server-owned)
  std::vector<Key> keys;
  std::vector<float> values;
};

HedgeCluster StartMutualReplicaPair(TempDir& dir,
                                    DelayedBackend::Options delay,
                                    size_t rows) {
  HedgeCluster hc;
  hc.keys.resize(rows);
  hc.values.resize(rows * 8);
  for (size_t i = 0; i < rows; ++i) {
    hc.keys[i] = i + 1;
    for (int d = 0; d < 8; ++d) hc.values[i * 8 + d] = i * 2.0f + d;
  }
  for (int i = 0; i < 2; ++i) {
    BackendConfig cfg;
    cfg.dir = dir.File(i == 0 ? "hp0" : "hp1");
    cfg.dim = 8;
    cfg.buffer_bytes = 4ull << 20;
    cfg.staleness_bound = UINT32_MAX - 1;
    cfg.shard_bits = 1;
    std::unique_ptr<KvBackend> engine;
    EXPECT_TRUE(MakeBackend(BackendKind::kFaster, cfg, &engine).ok());
    EXPECT_TRUE(engine->MultiPut(hc.keys, hc.values.data()).AllOk());
    if (i == 0) {
      auto d = std::make_unique<DelayedBackend>(std::move(engine), delay);
      hc.slow = d.get();
      engine = std::move(d);
    }
    net::KvServerOptions so;
    so.num_workers = 4;
    TestServer& t = i == 0 ? hc.s0 : hc.s1;
    t.server = std::make_unique<net::KvServer>(std::move(engine), so);
    EXPECT_TRUE(t.server->Start().ok());
    t.addr = t.server->addr();
  }
  auto map = std::make_shared<ClusterMap>();
  EXPECT_TRUE(BuildClusterMap({hc.s0.addr, hc.s1.addr},
                              {hc.s1.addr, hc.s0.addr}, 1,
                              ReadPreference::kPrimary, 1, map.get())
                  .ok());
  hc.s0.server->UpdateClusterMap(map, 0);
  hc.s1.server->UpdateClusterMap(map, 1);
  return hc;
}

TEST(ClusterHedgeTest, HedgingRecoversSlowEndpointReads) {
  TempDir dir;
  DelayedBackend::Options d;
  d.delay_us = 20000;  // every read on server 0 stalls well past the delay
  HedgeCluster hc = StartMutualReplicaPair(dir, d, 128);

  cluster::ClusterBackendOptions co;
  co.endpoints = {hc.s0.addr, hc.s1.addr};
  co.hedge_us = 1000;
  std::unique_ptr<ClusterBackend> client;
  ASSERT_TRUE(ClusterBackend::Connect(co, &client).ok());

  MultiGetOptions o;
  o.untracked = true;
  o.init_missing = false;
  std::vector<float> out(hc.keys.size() * 8);
  for (int rep = 0; rep < 5; ++rep) {
    std::fill(out.begin(), out.end(), -1.0f);
    const BatchResult r = client->MultiGet(hc.keys, out.data(), o);
    ASSERT_TRUE(r.AllOk()) << r.status().ToString();
    // First response wins, and the winner's bytes must be exactly the
    // written rows — whichever side served them.
    EXPECT_EQ(out, hc.values);
  }
  const cluster::HedgeStats hs = client->hedge_stats();
  EXPECT_GT(hs.issued, 0u);
  EXPECT_GT(hs.wins, 0u);
  EXPECT_GT(hc.slow->delays(), 0u);
  client.reset();
  hc.s0.server->Stop();
  hc.s1.server->Stop();
}

TEST(ClusterHedgeTest, WritesNeverHedge) {
  TempDir dir;
  DelayedBackend::Options d;
  d.delay_us = 3000;
  d.delay_writes = true;  // even a slow write path must not hedge
  HedgeCluster hc = StartMutualReplicaPair(dir, d, 64);

  cluster::ClusterBackendOptions co;
  co.endpoints = {hc.s0.addr, hc.s1.addr};
  co.hedge_us = 200;  // far below the write stall
  std::unique_ptr<ClusterBackend> client;
  ASSERT_TRUE(ClusterBackend::Connect(co, &client).ok());

  std::vector<float> grads(hc.keys.size() * 8, 0.0f);
  for (int rep = 0; rep < 3; ++rep) {
    ASSERT_TRUE(client->MultiPut(hc.keys, hc.values.data()).AllOk());
    ASSERT_TRUE(
        client->MultiApplyGradient(hc.keys, grads.data(), 0.0f).AllOk());
  }
  EXPECT_EQ(client->hedge_stats().issued, 0u);
  EXPECT_EQ(client->hedge_stats().wins, 0u);
  client.reset();
  hc.s0.server->Stop();
  hc.s1.server->Stop();
}

TEST(ClusterHotKeyTest, HotKeyReadsSpreadAcrossPrimaryAndReplica) {
  TempDir dir;
  HedgeCluster hc = StartMutualReplicaPair(dir, DelayedBackend::Options{},
                                           32);

  cluster::ClusterBackendOptions co;
  co.endpoints = {hc.s0.addr, hc.s1.addr};
  co.hot_replicate_top_k = 4;
  co.hot_refresh_interval = 64;
  std::unique_ptr<ClusterBackend> client;
  ASSERT_TRUE(ClusterBackend::Connect(co, &client).ok());

  const Key hot = hc.keys[0];
  MultiGetOptions o;
  o.untracked = true;
  o.init_missing = false;
  std::vector<float> out(8);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(client->MultiGet({&hot, 1}, out.data(), o).AllOk());
    for (int dd = 0; dd < 8; ++dd) {
      ASSERT_FLOAT_EQ(out[dd], hc.values[dd]) << "iter " << i;
    }
  }
  EXPECT_GT(client->hot_reads(), 0u);
  auto hotset = client->hot_keys();
  ASSERT_NE(hotset, nullptr);
  EXPECT_TRUE(hotset->contains(hot));
  // Once the tracker refreshes (after 64 reads), the hot key's reads
  // round-robin across primary and replica: both endpoints serve a
  // meaningful share of the 600 single-key batches.
  for (const cluster::EndpointStats& s : client->endpoint_stats()) {
    EXPECT_GT(s.requests, 100u) << s.addr;
  }
  client.reset();
  hc.s0.server->Stop();
  hc.s1.server->Stop();
}

}  // namespace
}  // namespace mlkv
