// Two-phase pending-read pipeline tests (kv/pending_read.h): sync/async
// byte-for-byte equivalence on a cold working set, duplicate-cold-key
// coalescing, a compaction deterministically racing an in-flight read,
// staleness-bound fallbacks, injected device failures surfacing as per-key
// codes without poisoning batch siblings, and drain-on-close.
#include "kv/pending_read.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "io/async_io.h"
#include "io/faulty_file_device.h"
#include "io/temp_dir.h"
#include "kv/faster_store.h"
#include "kv/sharded_store.h"
#include "mlkv/mlkv.h"

namespace mlkv {
namespace {

constexpr uint32_t kValueBytes = 32;

void FillValue(Key key, char* out) {
  for (uint32_t i = 0; i < kValueBytes; ++i) {
    out[i] = static_cast<char>((key * 31 + i) & 0xFF);
  }
}

// A sharded store with a tiny memory budget so most of `num_keys` end up
// disk-resident after the load.
ShardedStoreOptions ColdStoreOptions(const std::string& path,
                                     uint32_t shard_bits,
                                     AsyncIoEngine* io) {
  ShardedStoreOptions o;
  o.store.path = path;
  o.store.index_slots = 4096;
  o.store.mem_size = 1u << 16;  // 64 KiB total: a few hundred records hot
  o.store.page_size = 1u << 12;
  o.shard_bits = shard_bits;
  o.io = io;
  return o;
}

void LoadKeys(ShardedStore* store, uint64_t num_keys) {
  char value[kValueBytes];
  for (Key k = 0; k < num_keys; ++k) {
    FillValue(k, value);
    ASSERT_TRUE(store->Upsert(k, value, kValueBytes).ok());
  }
}

// The Get-shaped read op the embedding layer builds, reduced to raw bytes:
// phase-1 resolve or park, untracked.
ShardedStore::ShardReadOp RawReadOp(char* out, uint32_t stride) {
  return [out, stride](FasterStore* shard, Key key, size_t i,
                       BatchResult* part, size_t pi, PendingSink* sink) {
    char* dst = out + i * stride;
    if (sink == nullptr) {
      part->Record(pi, shard->Read(key, dst, stride));
      return;
    }
    auto p = std::make_unique<PendingRead>();
    if (shard->StartRead(key, dst, stride, nullptr, UINT32_MAX,
                         /*tracked=*/false, p.get())) {
      part->Record(pi, p->status);
      return;
    }
    sink->Park(shard, std::move(p), [part, pi](PendingRead* done) {
      part->Record(pi, done->status);
    });
  };
}

TEST(PendingReadTest, ColdBatchMatchesSyncByteForByte) {
  constexpr uint64_t kKeys = 2000;
  TempDir sync_dir, async_dir;
  AsyncIoEngine engine;

  ShardedStore sync_store, async_store;
  ASSERT_TRUE(
      sync_store.Open(ColdStoreOptions(sync_dir.File("s.log"), 2, nullptr))
          .ok());
  ASSERT_TRUE(
      async_store.Open(ColdStoreOptions(async_dir.File("a.log"), 2, &engine))
          .ok());
  LoadKeys(&sync_store, kKeys);
  LoadKeys(&async_store, kKeys);

  // Mixed batch: cold keys, hot keys, missing keys, strided order.
  std::vector<Key> keys;
  for (uint64_t i = 0; i < 256; ++i) keys.push_back((i * 37) % kKeys);
  keys.push_back(kKeys + 5);  // never stored
  keys.push_back(3);
  keys.push_back(kKeys + 9);  // never stored

  std::vector<char> sync_out(keys.size() * kValueBytes, 0);
  std::vector<char> async_out(keys.size() * kValueBytes, 0);
  BatchResult sync_r, async_r;
  sync_store.MultiExecuteRead(keys, RawReadOp(sync_out.data(), kValueBytes),
                              &sync_r);
  async_store.MultiExecuteRead(keys, RawReadOp(async_out.data(), kValueBytes),
                               &async_r);

  ASSERT_EQ(sync_r.codes.size(), async_r.codes.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(sync_r.codes[i], async_r.codes[i]) << "key " << keys[i];
    if (sync_r.codes[i] == Status::Code::kOk) {
      EXPECT_EQ(std::memcmp(&sync_out[i * kValueBytes],
                            &async_out[i * kValueBytes], kValueBytes),
                0)
          << "key " << keys[i];
    }
  }
  EXPECT_EQ(sync_r.found, async_r.found);
  EXPECT_EQ(sync_r.missing, async_r.missing);
  // The async store actually used the pipeline (the working set is cold),
  // and the sync store never did.
  EXPECT_GT(async_store.stats().async_reads_submitted, 0u);
  EXPECT_EQ(sync_store.stats().async_reads_submitted, 0u);
  EXPECT_EQ(async_store.stats().async_reads_submitted,
            async_store.stats().async_reads_completed);
}

TEST(PendingReadTest, DuplicateColdKeysCoalesceIntoOneIo) {
  constexpr uint64_t kKeys = 1500;
  TempDir dir;
  AsyncIoEngine engine;
  ShardedStore store;
  // shard_bits 0: all duplicates land in one shard's sub-batch.
  ASSERT_TRUE(
      store.Open(ColdStoreOptions(dir.File("c.log"), 0, &engine)).ok());
  LoadKeys(&store, kKeys);

  // One definitely-cold key, repeated; plus one other cold key.
  const Key cold = 7;
  std::vector<Key> keys(16, cold);
  keys.push_back(11);
  std::vector<char> out(keys.size() * kValueBytes, 0);
  BatchResult r;
  store.MultiExecuteRead(keys, RawReadOp(out.data(), kValueBytes), &r);

  char expected[kValueBytes];
  FillValue(cold, expected);
  for (size_t i = 0; i < 16; ++i) {
    ASSERT_EQ(r.codes[i], Status::Code::kOk);
    EXPECT_EQ(std::memcmp(&out[i * kValueBytes], expected, kValueBytes), 0);
  }
  FillValue(11, expected);
  EXPECT_EQ(std::memcmp(&out[16 * kValueBytes], expected, kValueBytes), 0);
  const FasterStatsSnapshot s = store.stats();
  // 17 key instances, 2 distinct cold records: at most 2 I/Os (+ hash-chain
  // hops, which an index of 4096 slots over 1500 keys makes rare).
  EXPECT_GT(s.async_reads_submitted, 0u);
  EXPECT_LE(s.async_reads_submitted, 4u);
}

TEST(PendingReadTest, CompactionRacingInFlightReadFallsBackToRefetch) {
  constexpr uint64_t kKeys = 1200;
  TempDir dir;
  AsyncIoEngine engine;
  ShardedStore sharded;
  ASSERT_TRUE(
      sharded.Open(ColdStoreOptions(dir.File("r.log"), 0, &engine)).ok());
  LoadKeys(&sharded, kKeys);
  FasterStore* store = sharded.shard(0);

  // Phase 1 parks a cold key...
  const Key victim = 3;
  char out[kValueBytes] = {0};
  auto p = std::make_unique<PendingRead>();
  ASSERT_FALSE(store->StartRead(victim, out, kValueBytes, nullptr, UINT32_MAX,
                                /*tracked=*/false, p.get()));
  // ...then compaction reclaims the whole cold region before the "I/O"
  // completes: the parked address is now below the begin boundary and its
  // live version was republished at the tail.
  ASSERT_TRUE(sharded.CompactAll().ok());
  ASSERT_GT(store->log().begin_address(), p->address);

  PendingSink sink;
  Status final_status;
  PendingRead* raw = p.get();
  sink.Park(store, std::move(p), [&final_status](PendingRead* done) {
    final_status = done->status;
  });
  PendingReadWave wave(&engine);
  wave.Adopt(&sink);
  wave.CompleteAll();
  (void)raw;

  ASSERT_TRUE(final_status.ok()) << final_status.ToString();
  char expected[kValueBytes];
  FillValue(victim, expected);
  EXPECT_EQ(std::memcmp(out, expected, kValueBytes), 0);
  EXPECT_GE(store->stats().async_reads_refetched, 1u);
}

TEST(PendingReadTest, PromotionInvalidatedInFlightSkipsCleanly) {
  // Regression: a StartPromote fetch has no caller output buffer; when the
  // record moves mid-flight (compaction here), the completion must skip
  // the promotion — not fall into the buffer-refilling refetch path.
  constexpr uint64_t kKeys = 1200;
  TempDir dir;
  AsyncIoEngine engine;
  ShardedStore sharded;
  ASSERT_TRUE(
      sharded.Open(ColdStoreOptions(dir.File("p.log"), 0, &engine)).ok());
  LoadKeys(&sharded, kKeys);
  FasterStore* store = sharded.shard(0);

  auto p = std::make_unique<PendingRead>();
  bool parked = false;
  ASSERT_TRUE(store->StartPromote(5, kValueBytes, p.get(), &parked).ok());
  ASSERT_TRUE(parked);
  ASSERT_TRUE(sharded.CompactAll().ok());
  ASSERT_GT(store->log().begin_address(), p->address);

  const uint64_t skipped_before = store->stats().promotions_skipped;
  PendingSink sink;
  sink.Park(store, std::move(p), [store](PendingRead* done) {
    EXPECT_TRUE(store->PromoteFromPending(*done).ok());
  });
  PendingReadWave wave(&engine);
  wave.Adopt(&sink);
  wave.CompleteAll();
  EXPECT_GT(store->stats().promotions_skipped, skipped_before);
  // The key still reads correctly afterwards.
  char out[kValueBytes], expected[kValueBytes];
  ASSERT_TRUE(store->Read(5, out, kValueBytes).ok());
  FillValue(5, expected);
  EXPECT_EQ(std::memcmp(out, expected, kValueBytes), 0);
}

TEST(PendingReadTest, StalenessBoundFallsBackToBlockingProtocol) {
  TempDir dir;
  AsyncIoEngine engine;
  ShardedStoreOptions o = ColdStoreOptions(dir.File("b.log"), 0, &engine);
  o.store.track_staleness = true;
  o.store.staleness_bound = 0;       // BSP
  o.store.busy_spin_limit = 16;      // abort fast in the fallback
  ShardedStore sharded;
  ASSERT_TRUE(sharded.Open(o).ok());
  FasterStore* store = sharded.shard(0);

  // Raise one key's staleness while it is still mutable, then bury it so
  // the stale counter freezes on disk.
  char value[kValueBytes];
  FillValue(42, value);
  ASSERT_TRUE(store->Upsert(42, value, kValueBytes).ok());
  char buf[kValueBytes];
  for (int i = 0; i < 3; ++i) {  // tracked reads: staleness -> 3
    ASSERT_TRUE(
        store->Read(42, buf, kValueBytes, nullptr, UINT32_MAX - 2).ok());
  }
  for (Key filler = 1000; filler < 3000; ++filler) {
    FillValue(filler, value);
    ASSERT_TRUE(store->Upsert(filler, value, kValueBytes).ok());
  }
  ASSERT_FALSE(store->IsInMemory(42));

  // Async tracked read under BSP: the landed record fails the bound, the
  // fallback re-read spins out, and the key reports Busy — exactly the
  // blocking path's outcome.
  std::vector<Key> keys = {42};
  keys.push_back(1001);  // sibling must still be served
  std::vector<char> rows(keys.size() * kValueBytes, 0);
  BatchResult r;
  sharded.MultiExecuteRead(
      keys,
      [&rows](FasterStore* shard, Key key, size_t i, BatchResult* part,
              size_t pi, PendingSink* sink) {
        char* dst = rows.data() + i * kValueBytes;
        if (sink == nullptr) {
          part->Record(pi, shard->Read(key, dst, kValueBytes));
          return;
        }
        auto p = std::make_unique<PendingRead>();
        if (shard->StartRead(key, dst, kValueBytes, nullptr, UINT32_MAX,
                             /*tracked=*/true, p.get())) {
          part->Record(pi, p->status);
          return;
        }
        sink->Park(shard, std::move(p), [part, pi](PendingRead* done) {
          part->Record(pi, done->status);
        });
      },
      &r);
  EXPECT_EQ(r.codes[0], Status::Code::kBusy);
  EXPECT_EQ(r.codes[1], Status::Code::kOk);
  EXPECT_GE(store->stats().async_reads_refetched, 1u);
  EXPECT_GE(store->stats().busy_aborts, 1u);
}

TEST(PendingReadTest, InjectedFaultsFailOnlyTheirKeys) {
  constexpr uint64_t kKeys = 1500;
  TempDir dir;
  AsyncIoEngine engine;
  auto script = std::make_shared<FaultyFileDevice::Script>();
  ShardedStoreOptions o = ColdStoreOptions(dir.File("f.log"), 0, &engine);
  o.store.device_factory = [script]() {
    return std::make_unique<FaultyFileDevice>(script);
  };
  ShardedStore store;
  ASSERT_TRUE(store.Open(o).ok());
  LoadKeys(&store, kKeys);

  std::vector<Key> keys;
  for (Key k = 0; k < 32; ++k) keys.push_back(k);  // all cold, distinct
  std::vector<char> out(keys.size() * kValueBytes, 0);

  // Fail exactly one device read; phase 1 issues none, so it is one of
  // the wave's record fetches.
  script->fail_from.store(script->reads.load() + 2);
  script->fail_count.store(1);
  BatchResult r;
  store.MultiExecuteRead(keys, RawReadOp(out.data(), kValueBytes), &r);

  EXPECT_EQ(r.failed, 1u);
  EXPECT_TRUE(r.first_error.IsIOError());
  size_t io_errors = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (r.codes[i] == Status::Code::kIOError) {
      ++io_errors;
      continue;
    }
    ASSERT_EQ(r.codes[i], Status::Code::kOk) << "sibling poisoned at " << i;
    char expected[kValueBytes];
    FillValue(keys[i], expected);
    EXPECT_EQ(std::memcmp(&out[i * kValueBytes], expected, kValueBytes), 0);
  }
  EXPECT_EQ(io_errors, 1u);

  // A persistently failing device fails every cold key — and still no
  // crash, hang, or misattributed success.
  script->fail_from.store(1);
  script->fail_count.store(UINT64_MAX);
  BatchResult all_fail;
  store.MultiExecuteRead(keys, RawReadOp(out.data(), kValueBytes),
                         &all_fail);
  EXPECT_EQ(all_fail.failed, keys.size());
  script->fail_from.store(0);  // disarm
}

TEST(PendingReadTest, MlkvAsyncModeEquivalenceAndLookahead) {
  // End-to-end through Mlkv/EmbeddingTable: async io_mode serves the same
  // bytes as sync, Lookahead promotions ride the wave, and closing the DB
  // right after issuing lookaheads drains cleanly.
  constexpr uint32_t kDim = 8;
  constexpr uint64_t kKeys = 1500;
  TempDir sync_dir, async_dir;

  auto run = [&](const std::string& dir, IoMode mode, uint64_t* submitted,
                 std::vector<float>* out) {
    MlkvOptions o;
    o.dir = dir;
    o.mem_size = 1u << 16;
    o.page_size = 1u << 12;
    o.shard_bits = 2;
    o.io_mode = mode;
    o.io_threads = 4;
    std::unique_ptr<Mlkv> db;
    ASSERT_TRUE(Mlkv::Open(o, &db).ok());
    EmbeddingTable* table = nullptr;
    ASSERT_TRUE(db->OpenTable("emb", kDim, kAspBound, &table).ok());

    std::vector<Key> keys(kKeys);
    std::vector<float> rows(kKeys * kDim);
    for (uint64_t k = 0; k < kKeys; ++k) {
      keys[k] = k;
      for (uint32_t d = 0; d < kDim; ++d) {
        rows[k * kDim + d] = static_cast<float>(k * 100 + d);
      }
    }
    BatchResult put;
    ASSERT_TRUE(table->Put(keys, rows.data(), &put).ok());

    // Cold batched gets: strided + duplicates + fresh keys.
    std::vector<Key> batch;
    for (uint64_t i = 0; i < 300; ++i) batch.push_back((i * 13) % kKeys);
    batch.push_back(batch[0]);
    batch.push_back(kKeys + 77);  // bootstrap path
    out->assign(batch.size() * kDim, 0.0f);
    BatchResult got;
    ASSERT_TRUE(table->GetOrInit(batch, out->data(), &got).ok());
    EXPECT_TRUE(got.AllOk());
    EXPECT_EQ(got.missing, 1u);

    // Lookahead promotion over cold keys rides the same pipeline.
    std::vector<Key> ahead;
    for (Key k = 0; k < 64; ++k) ahead.push_back(k);
    ASSERT_TRUE(table->Lookahead(ahead).ok());
    table->WaitLookahead();
    *submitted = table->store()->stats().async_reads_submitted;
    if (mode == IoMode::kAsync) {
      EXPECT_GT(table->store()->stats().promotions, 0u);
    }

    // Drain-on-close: issue lookaheads and destroy immediately.
    ASSERT_TRUE(table->Lookahead(ahead).ok());
    db.reset();
  };

  uint64_t sync_submitted = 1, async_submitted = 0;
  std::vector<float> sync_out, async_out;
  run(sync_dir.path() + "/db", IoMode::kSync, &sync_submitted, &sync_out);
  run(async_dir.path() + "/db", IoMode::kAsync, &async_submitted,
      &async_out);
  EXPECT_EQ(sync_submitted, 0u);
  EXPECT_GT(async_submitted, 0u);
  ASSERT_EQ(sync_out.size(), async_out.size());
  EXPECT_EQ(std::memcmp(sync_out.data(), async_out.data(),
                        sync_out.size() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace mlkv
