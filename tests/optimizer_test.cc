// Fused embedding optimizer tests: update math against hand-computed
// references, state layout, EmbeddingTable integration, and a convergence
// property sweep across all optimizer kinds.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "io/temp_dir.h"
#include "mlkv/mlkv.h"
#include "mlkv/optimizer.h"

namespace mlkv {
namespace {

TEST(OptimizerLayoutTest, StateFloatsPerKind) {
  EXPECT_EQ(OptimizerStateFloats(OptimizerKind::kSgd, 16), 0u);
  EXPECT_EQ(OptimizerStateFloats(OptimizerKind::kMomentum, 16), 16u);
  EXPECT_EQ(OptimizerStateFloats(OptimizerKind::kAdagrad, 16), 16u);
  EXPECT_EQ(OptimizerStateFloats(OptimizerKind::kAdam, 16), 33u);
}

TEST(OptimizerLayoutTest, ValueBytes) {
  EXPECT_EQ(OptimizerValueBytes(OptimizerKind::kSgd, 8), 32u);
  EXPECT_EQ(OptimizerValueBytes(OptimizerKind::kMomentum, 8), 64u);
  EXPECT_EQ(OptimizerValueBytes(OptimizerKind::kAdam, 8), (8 + 17) * 4u);
}

TEST(OptimizerLayoutTest, KindNames) {
  EXPECT_STREQ(OptimizerKindName(OptimizerKind::kSgd), "sgd");
  EXPECT_STREQ(OptimizerKindName(OptimizerKind::kMomentum), "momentum");
  EXPECT_STREQ(OptimizerKindName(OptimizerKind::kAdagrad), "adagrad");
  EXPECT_STREQ(OptimizerKindName(OptimizerKind::kAdam), "adam");
}

TEST(OptimizerMathTest, SgdStep) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kSgd;
  cfg.lr = 0.1f;
  float emb[2] = {1.0f, -2.0f};
  const float grad[2] = {0.5f, -0.25f};
  ApplyOptimizerUpdate(cfg, 2, emb, nullptr, grad);
  EXPECT_FLOAT_EQ(emb[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(emb[1], -2.0f + 0.1f * 0.25f);
}

TEST(OptimizerMathTest, SgdWeightDecay) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kSgd;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.01f;
  float emb[1] = {2.0f};
  const float grad[1] = {0.0f};
  ApplyOptimizerUpdate(cfg, 1, emb, nullptr, grad);
  // Pure decay: w -= lr * wd * w.
  EXPECT_FLOAT_EQ(emb[0], 2.0f - 0.1f * 0.01f * 2.0f);
}

TEST(OptimizerMathTest, MomentumAccumulatesVelocity) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kMomentum;
  cfg.lr = 0.1f;
  cfg.momentum = 0.9f;
  float emb[1] = {0.0f};
  float state[1] = {0.0f};
  const float grad[1] = {1.0f};
  ApplyOptimizerUpdate(cfg, 1, emb, state, grad);
  // u1 = 1, w1 = -0.1
  EXPECT_FLOAT_EQ(state[0], 1.0f);
  EXPECT_FLOAT_EQ(emb[0], -0.1f);
  ApplyOptimizerUpdate(cfg, 1, emb, state, grad);
  // u2 = 0.9 * 1 + 1 = 1.9, w2 = -0.1 - 0.19 = -0.29
  EXPECT_FLOAT_EQ(state[0], 1.9f);
  EXPECT_FLOAT_EQ(emb[0], -0.29f);
}

TEST(OptimizerMathTest, AdagradShrinksEffectiveLr) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdagrad;
  cfg.lr = 0.1f;
  cfg.eps = 0.0f;
  float emb[1] = {0.0f};
  float state[1] = {0.0f};
  const float grad[1] = {2.0f};
  ApplyOptimizerUpdate(cfg, 1, emb, state, grad);
  // a1 = 4, step = lr * 2 / 2 = 0.1
  EXPECT_FLOAT_EQ(state[0], 4.0f);
  EXPECT_FLOAT_EQ(emb[0], -0.1f);
  const float w1 = emb[0];
  ApplyOptimizerUpdate(cfg, 1, emb, state, grad);
  // a2 = 8, step2 = 0.1 * 2 / sqrt(8) < 0.1 — strictly smaller.
  EXPECT_FLOAT_EQ(state[0], 8.0f);
  EXPECT_LT(std::abs(emb[0] - w1), 0.1f);
}

TEST(OptimizerMathTest, AdamFirstStepIsBiasCorrected) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdam;
  cfg.lr = 0.001f;
  cfg.eps = 0.0f;
  float emb[1] = {0.0f};
  float state[3] = {0.0f, 0.0f, 0.0f};  // m, v, t
  const float grad[1] = {3.0f};
  ApplyOptimizerUpdate(cfg, 1, emb, state, grad);
  // With bias correction the first step is exactly lr * sign(g).
  EXPECT_NEAR(emb[0], -0.001f, 1e-7f);
  EXPECT_FLOAT_EQ(state[2], 1.0f);  // step counter advanced
}

TEST(OptimizerMathTest, AdamMatchesReferenceTrace) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdam;
  cfg.lr = 0.01f;
  float emb[1] = {1.0f};
  float state[3] = {0.0f, 0.0f, 0.0f};
  // Reference implementation (double precision, same recurrences).
  double w = 1.0, m = 0.0, v = 0.0;
  for (int t = 1; t <= 20; ++t) {
    const double g = 2.0 * w;  // grad of w^2
    const float gf[1] = {static_cast<float>(g)};
    ApplyOptimizerUpdate(cfg, 1, emb, state, gf);
    m = 0.9 * m + 0.1 * g;
    v = 0.999 * v + 0.001 * g * g;
    const double mh = m / (1.0 - std::pow(0.9, t));
    const double vh = v / (1.0 - std::pow(0.999, t));
    w -= 0.01 * mh / (std::sqrt(vh) + 1e-8);
    ASSERT_NEAR(emb[0], w, 1e-4) << "step " << t;
  }
}

// ------------------------------------------------- table integration ----

struct TableFixture {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  EmbeddingTable* table = nullptr;

  explicit TableFixture(OptimizerKind kind, float lr = 0.1f) {
    MlkvOptions opts;
    opts.dir = dir.path() + "/db";
    opts.index_slots = 1024;
    opts.page_size = 4096;
    opts.mem_size = 16 * 4096;
    EXPECT_TRUE(Mlkv::Open(opts, &db).ok());
    OptimizerConfig cfg;
    cfg.kind = kind;
    cfg.lr = lr;
    EXPECT_TRUE(db->OpenTable("t", 8, 16, &table, cfg).ok());
  }
};

TEST(FusedOptimizerTableTest, GetReturnsEmbeddingOnly) {
  TableFixture f(OptimizerKind::kAdam);
  const Key key = 5;
  std::vector<float> emb(8);
  ASSERT_TRUE(f.table->GetOrInit({&key, 1}, emb.data()).ok());
  EXPECT_EQ(f.table->value_bytes(), 8 * 4u);
  EXPECT_EQ(f.table->record_bytes(), (8 + 17) * 4u);
  // A second Get returns the same embedding (state invisible).
  std::vector<float> again(8);
  ASSERT_TRUE(f.table->Get({&key, 1}, again.data()).ok());
  EXPECT_EQ(emb, again);
}

TEST(FusedOptimizerTableTest, StatePersistsAcrossApplications) {
  // Adagrad's accumulated squared gradients must shrink later steps; that
  // only happens if state survives between ApplyGradients calls.
  TableFixture f(OptimizerKind::kAdagrad);
  const Key key = 9;
  std::vector<float> zero(8, 0.0f);
  ASSERT_TRUE(f.table->Put({&key, 1}, zero.data()).ok());
  std::vector<float> grad(8, 1.0f);
  std::vector<float> w1(8), w2(8);
  ASSERT_TRUE(f.table->ApplyGradients({&key, 1}, grad.data()).ok());
  ASSERT_TRUE(f.table->Get({&key, 1}, w1.data()).ok());
  ASSERT_TRUE(f.table->ApplyGradients({&key, 1}, grad.data()).ok());
  ASSERT_TRUE(f.table->Get({&key, 1}, w2.data()).ok());
  const float step1 = std::abs(w1[0]);
  const float step2 = std::abs(w2[0] - w1[0]);
  EXPECT_GT(step1, 0.0f);
  EXPECT_LT(step2, step1);  // effective lr decayed => state persisted
}

TEST(FusedOptimizerTableTest, PutPreservesOptimizerState) {
  TableFixture f(OptimizerKind::kAdagrad);
  const Key key = 3;
  std::vector<float> zero(8, 0.0f), grad(8, 1.0f);
  ASSERT_TRUE(f.table->Put({&key, 1}, zero.data()).ok());
  ASSERT_TRUE(f.table->ApplyGradients({&key, 1}, grad.data()).ok());
  // Overwrite the embedding; the accumulator must survive.
  ASSERT_TRUE(f.table->Put({&key, 1}, zero.data()).ok());
  std::vector<float> w(8);
  ASSERT_TRUE(f.table->ApplyGradients({&key, 1}, grad.data()).ok());
  ASSERT_TRUE(f.table->Get({&key, 1}, w.data()).ok());
  // With state preserved (a = 1 then 2): step = 0.1/sqrt(2) ≈ 0.0707.
  // With state reset it would be 0.1 again.
  EXPECT_NEAR(std::abs(w[0]), 0.1f / std::sqrt(2.0f), 1e-3f);
}

TEST(FusedOptimizerTableTest, LegacySgdOverloadIgnoresConfig) {
  TableFixture f(OptimizerKind::kAdam);
  const Key key = 4;
  std::vector<float> zero(8, 0.0f), grad(8, 1.0f), w(8);
  ASSERT_TRUE(f.table->Put({&key, 1}, zero.data()).ok());
  ASSERT_TRUE(f.table->ApplyGradients({&key, 1}, grad.data(), 0.5f).ok());
  ASSERT_TRUE(f.table->Get({&key, 1}, w.data()).ok());
  EXPECT_FLOAT_EQ(w[0], -0.5f);  // plain SGD with the explicit lr
}

TEST(FusedOptimizerTableTest, StateSurvivesCheckpointRecover) {
  TempDir dir;
  MlkvOptions opts;
  opts.dir = dir.path() + "/db";
  opts.index_slots = 1024;
  opts.page_size = 4096;
  opts.mem_size = 16 * 4096;
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdagrad;
  cfg.lr = 0.1f;
  const Key key = 11;
  std::vector<float> zero(8, 0.0f), grad(8, 1.0f);
  {
    std::unique_ptr<Mlkv> db;
    ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
    EmbeddingTable* table = nullptr;
    ASSERT_TRUE(db->OpenTable("t", 8, 16, &table, cfg).ok());
    ASSERT_TRUE(table->Put({&key, 1}, zero.data()).ok());
    ASSERT_TRUE(table->ApplyGradients({&key, 1}, grad.data()).ok());
    ASSERT_TRUE(db->CheckpointAll().ok());
  }
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(opts, &db).ok());
  EmbeddingTable* table = nullptr;
  ASSERT_TRUE(db->OpenTable("t", 8, 16, &table, cfg).ok());
  std::vector<float> w(8);
  ASSERT_TRUE(table->ApplyGradients({&key, 1}, grad.data()).ok());
  ASSERT_TRUE(table->Get({&key, 1}, w.data()).ok());
  // Accumulator recovered as 1, second step lands at -(0.1 + 0.1/sqrt(2)).
  EXPECT_NEAR(w[0], -(0.1f + 0.1f / std::sqrt(2.0f)), 1e-3f);
}

// Convergence sweep: every optimizer minimizes a per-row quadratic
// ||w - target||^2 through the fused path.
class OptimizerConvergenceTest
    : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OptimizerConvergenceTest, MinimizesQuadratic) {
  const OptimizerKind kind = GetParam();
  const float lr = kind == OptimizerKind::kAdam ? 0.05f : 0.1f;
  TableFixture f(kind, lr);
  const int kKeys = 10;
  const uint32_t dim = 8;
  std::vector<float> zero(dim, 0.0f);
  std::vector<Key> keys(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    keys[k] = k;
    ASSERT_TRUE(f.table->Put({&keys[k], 1}, zero.data()).ok());
  }
  auto target = [](Key k, uint32_t d) {
    return 0.1f * static_cast<float>(k) - 0.05f * static_cast<float>(d);
  };
  std::vector<float> w(dim), grad(dim);
  for (int step = 0; step < 600; ++step) {
    for (int k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(f.table->Get({&keys[k], 1}, w.data()).ok());
      for (uint32_t d = 0; d < dim; ++d) {
        grad[d] = 2.0f * (w[d] - target(keys[k], d));
      }
      ASSERT_TRUE(f.table->ApplyGradients({&keys[k], 1}, grad.data()).ok());
    }
  }
  double err = 0;
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(f.table->Get({&keys[k], 1}, w.data()).ok());
    for (uint32_t d = 0; d < dim; ++d) {
      err = std::max(err, std::abs(static_cast<double>(w[d]) -
                                   target(keys[k], d)));
    }
  }
  EXPECT_LT(err, 0.02) << OptimizerKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, OptimizerConvergenceTest,
    ::testing::Values(OptimizerKind::kSgd, OptimizerKind::kMomentum,
                      OptimizerKind::kAdagrad, OptimizerKind::kAdam),
    [](const ::testing::TestParamInfo<OptimizerKind>& info) {
      return OptimizerKindName(info.param);
    });

}  // namespace
}  // namespace mlkv
