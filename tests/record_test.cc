// Unit tests for the control-word encoding (paper Fig. 5(a)) — the bit
// packing everything else rests on.
#include <gtest/gtest.h>

#include "kv/record.h"

namespace mlkv {
namespace {

TEST(ControlWordTest, FieldIsolation) {
  // Setting each field must not disturb the others.
  uint64_t c = ControlWord::Make(/*generation=*/12345, /*staleness=*/678);
  EXPECT_EQ(ControlWord::Generation(c), 12345u);
  EXPECT_EQ(ControlWord::Staleness(c), 678u);
  EXPECT_FALSE(ControlWord::Locked(c));
  EXPECT_FALSE(ControlWord::Replaced(c));

  c = ControlWord::SetLocked(c);
  EXPECT_TRUE(ControlWord::Locked(c));
  EXPECT_EQ(ControlWord::Generation(c), 12345u);
  EXPECT_EQ(ControlWord::Staleness(c), 678u);

  c = ControlWord::SetReplaced(c);
  EXPECT_TRUE(ControlWord::Replaced(c));
  EXPECT_TRUE(ControlWord::Locked(c));
  EXPECT_EQ(ControlWord::Generation(c), 12345u);

  c = ControlWord::ClearLocked(c);
  EXPECT_FALSE(ControlWord::Locked(c));
  EXPECT_TRUE(ControlWord::Replaced(c));
}

TEST(ControlWordTest, StalenessIncrDecrRoundTrip) {
  uint64_t c = ControlWord::Make(5, 10);
  c = ControlWord::IncrStaleness(c);
  EXPECT_EQ(ControlWord::Staleness(c), 11u);
  c = ControlWord::DecrStaleness(c);
  EXPECT_EQ(ControlWord::Staleness(c), 10u);
  EXPECT_EQ(ControlWord::Generation(c), 5u);
}

TEST(ControlWordTest, StalenessSaturatesBothEnds) {
  uint64_t c = ControlWord::Make(0, 0);
  c = ControlWord::DecrStaleness(c);
  EXPECT_EQ(ControlWord::Staleness(c), 0u) << "must not underflow into gen";
  EXPECT_EQ(ControlWord::Generation(c), 0u);

  c = ControlWord::WithStaleness(c, UINT32_MAX);
  c = ControlWord::IncrStaleness(c);
  EXPECT_EQ(ControlWord::Staleness(c), UINT32_MAX) << "must not overflow";
}

TEST(ControlWordTest, GenerationWrapsWithin30Bits) {
  uint64_t c = ControlWord::Make((1u << 30) - 1, 7);
  c = ControlWord::IncrGeneration(c);
  EXPECT_EQ(ControlWord::Generation(c), 0u) << "30-bit wraparound";
  EXPECT_EQ(ControlWord::Staleness(c), 7u);
  EXPECT_FALSE(ControlWord::Locked(c)) << "wrap must not leak into flags";
  EXPECT_FALSE(ControlWord::Replaced(c));
}

TEST(ControlWordTest, SanitizeDropsTransientBits) {
  uint64_t c = ControlWord::Make(9, 3);
  c = ControlWord::SetLocked(ControlWord::SetReplaced(c));
  const uint64_t s = ControlWord::Sanitize(c);
  EXPECT_FALSE(ControlWord::Locked(s));
  EXPECT_FALSE(ControlWord::Replaced(s));
  EXPECT_EQ(ControlWord::Generation(s), 9u);
  EXPECT_EQ(ControlWord::Staleness(s), 3u);
}

TEST(RecordTest, LayoutMatchesOnDiskContract) {
  // ReadFromDisk deserializes with a packed struct mirror; these offsets
  // are load-bearing.
  EXPECT_EQ(sizeof(Record), 32u);
  EXPECT_EQ(offsetof(Record, prev), 8u);
  EXPECT_EQ(offsetof(Record, key), 16u);
  EXPECT_EQ(offsetof(Record, value_size), 24u);
  EXPECT_EQ(offsetof(Record, flags), 28u);
}

TEST(RecordTest, SizeForAligns) {
  EXPECT_EQ(Record::SizeFor(0), 32u);
  EXPECT_EQ(Record::SizeFor(1), 40u);
  EXPECT_EQ(Record::SizeFor(8), 40u);
  EXPECT_EQ(Record::SizeFor(9), 48u);
  EXPECT_EQ(Record::SizeFor(64), 96u);
}

}  // namespace
}  // namespace mlkv
