// Property-based tests: the hybrid-log store must be observationally
// equivalent to a reference std::unordered_map under randomized single-
// threaded op sequences, across a grid of geometries (page size, buffer
// size, mutable fraction, value size, staleness tracking). Small buffers
// force flush/eviction/RCU/disk-read paths constantly, so equivalence here
// covers the whole region state machine.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <unordered_map>

#include "common/random.h"
#include "io/temp_dir.h"
#include "kv/faster_store.h"

namespace mlkv {
namespace {

struct StoreGeometry {
  uint64_t page_size;
  uint64_t mem_pages;
  double mutable_fraction;
  uint32_t value_size;
  bool track_staleness;
};

class StorePropertyTest : public ::testing::TestWithParam<StoreGeometry> {};

std::string ValueFor(Key key, uint64_t version, uint32_t size) {
  std::string v(size, '\0');
  Rng rng(Hash64(key) ^ version);
  for (auto& c : v) c = static_cast<char>(rng.Next() & 0xff);
  return v;
}

TEST_P(StorePropertyTest, MatchesReferenceModelUnderRandomOps) {
  const StoreGeometry g = GetParam();
  TempDir dir;
  FasterOptions o;
  o.path = dir.File("prop.log");
  o.index_slots = 512;  // small: heavy chain collisions on purpose
  o.page_size = g.page_size;
  o.mem_size = g.page_size * g.mem_pages;
  o.mutable_fraction = g.mutable_fraction;
  o.track_staleness = g.track_staleness;
  o.staleness_bound = UINT32_MAX - 1;  // clocks maintained, reads never wait
  FasterStore store;
  ASSERT_TRUE(store.Open(o).ok());

  std::unordered_map<Key, std::string> reference;
  Rng rng(g.page_size ^ g.mem_pages ^ g.value_size);
  constexpr int kOps = 20000;
  constexpr Key kKeySpace = 700;
  uint64_t version = 1;

  for (int i = 0; i < kOps; ++i) {
    const Key key = rng.Uniform(kKeySpace);
    const int action = static_cast<int>(rng.Uniform(100));
    if (action < 45) {  // read
      std::string got;
      const Status s = store.Read(key, &got);
      auto it = reference.find(key);
      if (it == reference.end()) {
        ASSERT_TRUE(s.IsNotFound()) << "op " << i << " key " << key << ": "
                                    << s.ToString();
      } else {
        ASSERT_TRUE(s.ok()) << "op " << i << " key " << key;
        ASSERT_EQ(got, it->second) << "op " << i << " key " << key;
      }
    } else if (action < 80) {  // upsert (occasionally different size)
      uint32_t size = g.value_size;
      if (action < 50) size = g.value_size / 2 + 1;
      const std::string v = ValueFor(key, version++, size);
      ASSERT_TRUE(store.Upsert(key, v.data(),
                               static_cast<uint32_t>(v.size()))
                      .ok());
      reference[key] = v;
    } else if (action < 90) {  // rmw: append-like bump of first byte
      const bool existed = reference.count(key) > 0;
      ASSERT_TRUE(store
                      .Rmw(key, g.value_size,
                           [](char* value, uint32_t n, bool exists) {
                             if (!exists) std::memset(value, 0, n);
                             value[0] = static_cast<char>(value[0] + 1);
                           })
                      .ok());
      std::string& ref = reference[key];
      if (!existed) {
        ref.assign(g.value_size, '\0');
      } else if (ref.size() != g.value_size) {
        ref.resize(g.value_size, '\0');
      }
      ref[0] = static_cast<char>(ref[0] + 1);
    } else if (action < 95) {  // delete
      const Status s = store.Delete(key);
      if (reference.erase(key) > 0) {
        ASSERT_TRUE(s.ok());
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else {  // promote (lookahead primitive): must never change contents
      store.Promote(key).ok();
    }
  }

  // Full final audit.
  for (const auto& [key, expected] : reference) {
    std::string got;
    ASSERT_TRUE(store.Read(key, &got).ok()) << "final key " << key;
    ASSERT_EQ(got, expected) << "final key " << key;
  }
  for (Key key = 0; key < kKeySpace; ++key) {
    if (reference.count(key)) continue;
    std::string got;
    ASSERT_TRUE(store.Read(key, &got).IsNotFound()) << "ghost key " << key;
  }
}

TEST_P(StorePropertyTest, CheckpointRecoverPreservesEverything) {
  const StoreGeometry g = GetParam();
  TempDir dir;
  FasterOptions o;
  o.path = dir.File("ckpt.log");
  o.index_slots = 512;
  o.page_size = g.page_size;
  o.mem_size = g.page_size * g.mem_pages;
  o.mutable_fraction = g.mutable_fraction;
  o.track_staleness = g.track_staleness;
  o.staleness_bound = UINT32_MAX - 1;

  std::unordered_map<Key, std::string> reference;
  {
    FasterStore store;
    ASSERT_TRUE(store.Open(o).ok());
    Rng rng(g.page_size + g.value_size);
    for (int i = 0; i < 4000; ++i) {
      const Key key = rng.Uniform(500);
      if (rng.Uniform(10) == 0 && reference.count(key)) {
        ASSERT_TRUE(store.Delete(key).ok());
        reference.erase(key);
      } else {
        const std::string v = ValueFor(key, i, g.value_size);
        ASSERT_TRUE(store.Upsert(key, v.data(),
                                 static_cast<uint32_t>(v.size()))
                        .ok());
        reference[key] = v;
      }
    }
    ASSERT_TRUE(store.Checkpoint(dir.File("ckpt")).ok());
  }

  FasterStore restored;
  ASSERT_TRUE(restored.Recover(o, dir.File("ckpt")).ok());
  for (const auto& [key, expected] : reference) {
    std::string got;
    ASSERT_TRUE(restored.Read(key, &got).ok()) << "key " << key;
    ASSERT_EQ(got, expected) << "key " << key;
  }
  // Recovered store keeps serving writes correctly.
  const std::string fresh = ValueFor(99999, 1, g.value_size);
  ASSERT_TRUE(restored.Upsert(99999, fresh.data(),
                              static_cast<uint32_t>(fresh.size()))
                  .ok());
  std::string got;
  ASSERT_TRUE(restored.Read(99999, &got).ok());
  EXPECT_EQ(got, fresh);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, StorePropertyTest,
    ::testing::Values(
        StoreGeometry{4096, 4, 0.5, 32, false},     // smallest legal buffer
        StoreGeometry{4096, 8, 0.5, 32, true},      // staleness on
        StoreGeometry{4096, 8, 0.25, 64, true},     // mostly read-only
        StoreGeometry{4096, 8, 0.9, 64, false},     // mostly mutable
        StoreGeometry{16384, 6, 0.5, 128, true},    // bigger pages
        StoreGeometry{4096, 32, 0.5, 48, true},     // mostly in-memory
        StoreGeometry{8192, 4, 0.5, 513, false},    // odd size, unaligned
        StoreGeometry{4096, 4, 0.5, 24, true}),     // tiny values, churny
    [](const ::testing::TestParamInfo<StoreGeometry>& info) {
      const StoreGeometry& g = info.param;
      return "pg" + std::to_string(g.page_size) + "x" +
             std::to_string(g.mem_pages) + "_mut" +
             std::to_string(static_cast<int>(g.mutable_fraction * 100)) +
             "_val" + std::to_string(g.value_size) +
             (g.track_staleness ? "_mlkv" : "_faster");
    });

}  // namespace
}  // namespace mlkv
