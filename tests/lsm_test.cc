#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/temp_dir.h"
#include "lsm/bloom.h"
#include "lsm/block_cache.h"
#include "lsm/lsm_store.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"

namespace mlkv {
namespace {

TEST(BloomTest, NoFalseNegatives) {
  std::vector<Key> keys;
  for (Key k = 0; k < 5000; k += 3) keys.push_back(k);
  BloomFilter bloom;
  bloom.Build(keys, 10);
  for (Key k : keys) EXPECT_TRUE(bloom.MayContain(k)) << k;
}

TEST(BloomTest, LowFalsePositiveRate) {
  std::vector<Key> keys;
  for (Key k = 0; k < 10000; ++k) keys.push_back(k);
  BloomFilter bloom;
  bloom.Build(keys, 10);
  int fp = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    if (bloom.MayContain(1000000 + static_cast<Key>(i))) ++fp;
  }
  EXPECT_LT(fp, probes * 0.03) << "10 bits/key should give ~1% FPR";
}

TEST(BloomTest, SerializeRoundTrip) {
  std::vector<Key> keys = {1, 5, 9, 200, 12345};
  BloomFilter bloom;
  bloom.Build(keys, 10);
  const std::string bytes = bloom.Serialize();
  BloomFilter restored;
  ASSERT_TRUE(restored.Deserialize(bytes.data(), bytes.size()));
  for (Key k : keys) EXPECT_TRUE(restored.MayContain(k));
}

TEST(BloomTest, DeserializeRejectsGarbage) {
  BloomFilter bloom;
  EXPECT_FALSE(bloom.Deserialize("xy", 2));
}

TEST(MemTableTest, PutGetDelete) {
  MemTable mt;
  mt.Put(1, "abc", 3);
  auto e = mt.Get(1);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->value, "abc");
  EXPECT_FALSE(e->tombstone);
  mt.Delete(1);
  e = mt.Get(1);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->tombstone);
  EXPECT_FALSE(mt.Get(2).has_value());
}

TEST(MemTableTest, SnapshotIsSorted) {
  MemTable mt;
  mt.Put(5, "e", 1);
  mt.Put(1, "a", 1);
  mt.Put(3, "c", 1);
  auto snap = mt.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, 1u);
  EXPECT_EQ(snap[1].first, 3u);
  EXPECT_EQ(snap[2].first, 5u);
}

TEST(BlockCacheTest, InsertGetEvict) {
  BlockCache cache(1024, /*shards=*/1);
  cache.Insert({1, 0}, std::string(400, 'a'));
  cache.Insert({1, 400}, std::string(400, 'b'));
  std::string out;
  EXPECT_TRUE(cache.Get({1, 0}, &out));
  EXPECT_EQ(out.size(), 400u);
  // Third block forces eviction of the LRU one ({1,400}, since {1,0} was
  // touched more recently).
  cache.Insert({1, 800}, std::string(400, 'c'));
  EXPECT_TRUE(cache.Get({1, 0}, &out));
  EXPECT_FALSE(cache.Get({1, 400}, &out));
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(BlockCacheTest, EraseTableDropsItsBlocks) {
  BlockCache cache(1 << 20);
  cache.Insert({7, 0}, "table7");
  cache.Insert({8, 0}, "table8");
  cache.EraseTable(7);
  std::string out;
  EXPECT_FALSE(cache.Get({7, 0}, &out));
  EXPECT_TRUE(cache.Get({8, 0}, &out));
}

TEST(SSTableTest, BuildOpenGet) {
  TempDir dir;
  BlockCache cache(1 << 20);
  const std::string path = dir.File("t.sst");
  SSTableBuilder builder(path, 256);
  for (Key k = 0; k < 500; k += 2) {
    ASSERT_TRUE(builder.Add(k, "v" + std::to_string(k), false).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());

  std::unique_ptr<SSTable> table;
  ASSERT_TRUE(SSTable::Open(path, 1, &cache, &table).ok());
  EXPECT_EQ(table->num_entries(), 250u);
  EXPECT_EQ(table->min_key(), 0u);
  EXPECT_EQ(table->max_key(), 498u);
  SSTable::GetResult r;
  ASSERT_TRUE(table->Get(100, &r).ok());
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, "v100");
  ASSERT_TRUE(table->Get(101, &r).ok());
  EXPECT_FALSE(r.found) << "odd keys were never added";
  ASSERT_TRUE(table->Get(9999, &r).ok());
  EXPECT_FALSE(r.found);
}

TEST(SSTableTest, RejectsOutOfOrderKeys) {
  TempDir dir;
  SSTableBuilder builder(dir.File("bad.sst"));
  ASSERT_TRUE(builder.Add(10, "a", false).ok());
  EXPECT_TRUE(builder.Add(5, "b", false).IsInvalidArgument());
}

TEST(SSTableTest, ScanVisitsAllInOrder) {
  TempDir dir;
  BlockCache cache(1 << 20);
  const std::string path = dir.File("scan.sst");
  SSTableBuilder builder(path, 128);
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(builder.Add(k, std::to_string(k), k % 7 == 0).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  std::unique_ptr<SSTable> table;
  ASSERT_TRUE(SSTable::Open(path, 2, &cache, &table).ok());
  Key expect = 0;
  int tombs = 0;
  ASSERT_TRUE(table
                  ->Scan([&](Key k, const std::string& v, bool tomb) {
                    EXPECT_EQ(k, expect++);
                    if (tomb) ++tombs;
                  })
                  .ok());
  EXPECT_EQ(expect, 100u);
  EXPECT_EQ(tombs, 15);
}

TEST(LsmStoreTest, PutGetAcrossFlushes) {
  TempDir dir;
  LsmOptions o;
  o.dir = dir.File("lsm");
  o.memtable_bytes = 4096;  // tiny: force frequent flushes
  o.block_cache_bytes = 1 << 16;
  LsmStore store;
  ASSERT_TRUE(store.Open(o).ok());
  for (Key k = 0; k < 2000; ++k) {
    const std::string v = "value-" + std::to_string(k);
    ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
  }
  EXPECT_GT(store.stats().flushes, 0u);
  for (Key k = 0; k < 2000; ++k) {
    std::string out;
    ASSERT_TRUE(store.Get(k, &out).ok()) << k;
    EXPECT_EQ(out, "value-" + std::to_string(k));
  }
}

TEST(LsmStoreTest, NewestVersionWinsAcrossLevels) {
  TempDir dir;
  LsmOptions o;
  o.dir = dir.File("lsm");
  o.memtable_bytes = 2048;
  LsmStore store;
  ASSERT_TRUE(store.Open(o).ok());
  for (int round = 0; round < 5; ++round) {
    for (Key k = 0; k < 200; ++k) {
      const std::string v = "r" + std::to_string(round) + "-" +
                            std::to_string(k);
      ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
    }
  }
  for (Key k = 0; k < 200; ++k) {
    std::string out;
    ASSERT_TRUE(store.Get(k, &out).ok());
    EXPECT_EQ(out, "r4-" + std::to_string(k)) << k;
  }
}

TEST(LsmStoreTest, CompactionBoundsL0AndPreservesData) {
  TempDir dir;
  LsmOptions o;
  o.dir = dir.File("lsm");
  o.memtable_bytes = 2048;
  o.l0_compaction_trigger = 3;
  LsmStore store;
  ASSERT_TRUE(store.Open(o).ok());
  for (Key k = 0; k < 3000; ++k) {
    const std::string v = std::string(32, static_cast<char>('a' + k % 26));
    ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
  }
  EXPECT_GT(store.stats().compactions, 0u);
  EXPECT_LT(store.l0_run_count(), 4u);
  EXPECT_LE(store.l1_run_count(), 1u);
  std::string out;
  ASSERT_TRUE(store.Get(1500, &out).ok());
  EXPECT_EQ(out[0], static_cast<char>('a' + 1500 % 26));
}

TEST(LsmStoreTest, DeleteSurvivesFlushAndCompaction) {
  TempDir dir;
  LsmOptions o;
  o.dir = dir.File("lsm");
  o.memtable_bytes = 1024;
  o.l0_compaction_trigger = 2;
  LsmStore store;
  ASSERT_TRUE(store.Open(o).ok());
  ASSERT_TRUE(store.Put(42, "gone", 4).ok());
  ASSERT_TRUE(store.Flush().ok());
  ASSERT_TRUE(store.Delete(42).ok());
  // Bury the tombstone under flushes + compaction.
  for (Key k = 100; k < 1000; ++k) {
    ASSERT_TRUE(store.Put(k, "fill-fill-fill", 14).ok());
  }
  std::string out;
  EXPECT_TRUE(store.Get(42, &out).IsNotFound());
}

TEST(LsmStoreTest, GetMissingKey) {
  TempDir dir;
  LsmOptions o;
  o.dir = dir.File("lsm");
  LsmStore store;
  ASSERT_TRUE(store.Open(o).ok());
  std::string out;
  EXPECT_TRUE(store.Get(7, &out).IsNotFound());
}


TEST(SSTableRangeScanTest, SkipsNonOverlappingBlocks) {
  TempDir dir;
  const std::string path = dir.File("r.sst");
  BlockCache cache(1 << 20);
  {
    SSTableBuilder b(path, /*block_size=*/128, 10);  // many small blocks
    for (Key k = 0; k < 500; ++k) {
      ASSERT_TRUE(b.Add(k * 2, "v" + std::to_string(k * 2), false).ok());
    }
    ASSERT_TRUE(b.Finish().ok());
  }
  std::unique_ptr<SSTable> t;
  ASSERT_TRUE(SSTable::Open(path, 1, &cache, &t).ok());
  std::vector<Key> got;
  ASSERT_TRUE(t->RangeScan(100, 140, [&](Key k, const std::string& v, bool) {
    got.push_back(k);
    EXPECT_EQ(v, "v" + std::to_string(k));
  }).ok());
  std::vector<Key> expected;
  for (Key k = 100; k <= 140; k += 2) expected.push_back(k);
  EXPECT_EQ(got, expected);
}

TEST(SSTableRangeScanTest, EdgeRanges) {
  TempDir dir;
  const std::string path = dir.File("r.sst");
  BlockCache cache(1 << 20);
  {
    SSTableBuilder b(path, 128, 10);
    for (Key k = 10; k <= 20; ++k) {
      ASSERT_TRUE(b.Add(k, "x", false).ok());
    }
    ASSERT_TRUE(b.Finish().ok());
  }
  std::unique_ptr<SSTable> t;
  ASSERT_TRUE(SSTable::Open(path, 1, &cache, &t).ok());
  int n = 0;
  auto count = [&n](Key, const std::string&, bool) { ++n; };
  // Entirely below / above the table.
  ASSERT_TRUE(t->RangeScan(0, 9, count).ok());
  EXPECT_EQ(n, 0);
  ASSERT_TRUE(t->RangeScan(21, 100, count).ok());
  EXPECT_EQ(n, 0);
  // Reversed range.
  ASSERT_TRUE(t->RangeScan(15, 12, count).ok());
  EXPECT_EQ(n, 0);
  // Exact single key and inclusive bounds.
  ASSERT_TRUE(t->RangeScan(15, 15, count).ok());
  EXPECT_EQ(n, 1);
  n = 0;
  ASSERT_TRUE(t->RangeScan(10, 20, count).ok());
  EXPECT_EQ(n, 11);
}

TEST(SSTableRangeScanTest, IncludesTombstones) {
  TempDir dir;
  const std::string path = dir.File("r.sst");
  BlockCache cache(1 << 20);
  {
    SSTableBuilder b(path, 4096, 10);
    ASSERT_TRUE(b.Add(1, "a", false).ok());
    ASSERT_TRUE(b.Add(2, "", true).ok());
    ASSERT_TRUE(b.Add(3, "c", false).ok());
    ASSERT_TRUE(b.Finish().ok());
  }
  std::unique_ptr<SSTable> t;
  ASSERT_TRUE(SSTable::Open(path, 1, &cache, &t).ok());
  int tombs = 0, live = 0;
  ASSERT_TRUE(t->RangeScan(1, 3, [&](Key, const std::string&, bool tomb) {
    tomb ? ++tombs : ++live;
  }).ok());
  EXPECT_EQ(tombs, 1);
  EXPECT_EQ(live, 2);
}

}  // namespace
}  // namespace mlkv
