#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "io/temp_dir.h"
#include "kv/hybrid_log.h"

namespace mlkv {
namespace {

HybridLogOptions SmallLog(const TempDir& dir, uint64_t pages = 8,
                          uint64_t page_size = 4096) {
  HybridLogOptions o;
  o.page_size = page_size;
  o.mem_size = pages * page_size;
  o.mutable_fraction = 0.5;
  o.path = dir.File("log");
  return o;
}

TEST(HybridLogTest, OpenRejectsBadGeometry) {
  TempDir dir;
  HybridLog log;
  HybridLogOptions o = SmallLog(dir);
  o.page_size = 3000;  // not a power of two
  EXPECT_TRUE(log.Open(o).IsInvalidArgument());
  o = SmallLog(dir, /*pages=*/2);  // too few pages
  EXPECT_TRUE(log.Open(o).IsInvalidArgument());
}

TEST(HybridLogTest, AllocateReturnsWritableMemory) {
  TempDir dir;
  HybridLog log;
  ASSERT_TRUE(log.Open(SmallLog(dir)).ok());
  Address a;
  char* mem;
  ASSERT_TRUE(log.Allocate(64, &a, &mem).ok());
  EXPECT_EQ(a, HybridLog::kLogBegin);
  std::memset(mem, 0xAB, 64);
  log.EndAppend(a);
  char buf[64];
  ASSERT_TRUE(log.TryReadMemory(a, buf, 64));
  EXPECT_EQ(buf[0], static_cast<char>(0xAB));
  EXPECT_EQ(buf[63], static_cast<char>(0xAB));
}

TEST(HybridLogTest, AllocationsAreAlignedAndMonotonic) {
  TempDir dir;
  HybridLog log;
  ASSERT_TRUE(log.Open(SmallLog(dir)).ok());
  Address prev = 0;
  for (int i = 0; i < 100; ++i) {
    Address a;
    char* mem;
    ASSERT_TRUE(log.Allocate(33, &a, &mem).ok());  // odd size: gets padded
    log.EndAppend(a);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(HybridLogTest, PageRollAdvancesReadOnlyBoundary) {
  TempDir dir;
  HybridLog log;
  ASSERT_TRUE(log.Open(SmallLog(dir, 8, 4096)).ok());
  EXPECT_EQ(log.read_only_address(), HybridLog::kLogBegin);
  // Fill ~6 pages; mutable window is 4 pages, so read_only must advance.
  Address a;
  char* mem;
  for (int i = 0; i < 6 * 4096 / 512; ++i) {
    ASSERT_TRUE(log.Allocate(512, &a, &mem).ok());
    log.EndAppend(a);
  }
  EXPECT_GT(log.read_only_address(), HybridLog::kLogBegin);
  EXPECT_LE(log.read_only_address(), log.tail());
  EXPECT_LE(log.head_address(), log.read_only_address());
}

TEST(HybridLogTest, EvictionMovesHeadAndDiskReadsWork) {
  TempDir dir;
  HybridLog log;
  ASSERT_TRUE(log.Open(SmallLog(dir, 4, 4096)).ok());
  // Write identifiable records: 128-byte chunks holding their own address.
  std::vector<Address> addrs;
  for (int i = 0; i < 400; ++i) {  // ~12 pages >> 4-page buffer
    Address a;
    char* mem;
    ASSERT_TRUE(log.Allocate(128, &a, &mem).ok());
    std::memcpy(mem, &a, sizeof(a));
    log.EndAppend(a);
    addrs.push_back(a);
  }
  EXPECT_GT(log.head_address(), HybridLog::kLogBegin);
  EXPECT_GT(log.stats().pages_evicted.load(), 0u);

  // Early addresses must have been evicted; memory read fails, disk works.
  const Address early = addrs.front();
  ASSERT_LT(early, log.head_address());
  char buf[128];
  EXPECT_FALSE(log.TryReadMemory(early, buf, 128));
  RecordMeta meta;
  // Interpret the raw chunk as a record header: the first 8 bytes (control
  // in Record layout) hold the address we wrote.
  ASSERT_TRUE(log.ReadFromDisk(early, &meta, nullptr, 0).ok());
  EXPECT_EQ(ControlWord::Sanitize(early), meta.control);

  // Recent addresses still read from memory and match.
  const Address late = addrs.back();
  ASSERT_TRUE(log.TryReadMemory(late, buf, 128));
  Address stored;
  std::memcpy(&stored, buf, sizeof(stored));
  EXPECT_EQ(stored, late);
}

TEST(HybridLogTest, InPlaceWriteRefusedBelowReadOnly) {
  TempDir dir;
  HybridLog log;
  ASSERT_TRUE(log.Open(SmallLog(dir, 8, 4096)).ok());
  Address first;
  char* mem;
  ASSERT_TRUE(log.Allocate(256, &first, &mem).ok());
  log.EndAppend(first);
  ASSERT_TRUE(log.BeginInPlaceWrite(first));
  log.EndInPlaceWrite(first);
  // Push the boundary past `first`.
  for (int i = 0; i < 8 * 4096 / 256; ++i) {
    Address a;
    ASSERT_TRUE(log.Allocate(256, &a, &mem).ok());
    log.EndAppend(a);
  }
  ASSERT_LT(first, log.read_only_address());
  EXPECT_FALSE(log.BeginInPlaceWrite(first));
}

TEST(HybridLogTest, FlushAllPersistsTailPage) {
  TempDir dir;
  HybridLog log;
  ASSERT_TRUE(log.Open(SmallLog(dir)).ok());
  Address a;
  char* mem;
  ASSERT_TRUE(log.Allocate(64, &a, &mem).ok());
  std::memset(mem, 0x5A, 64);
  log.EndAppend(a);
  ASSERT_TRUE(log.FlushAll().ok());
  // Read the bytes straight from the file at the logical offset.
  char buf[64];
  ASSERT_TRUE(log.device()->ReadAt(a, buf, 64).ok());
  EXPECT_EQ(buf[0], 0x5A);
  EXPECT_EQ(buf[63], 0x5A);
}

TEST(HybridLogTest, RestoreBoundariesStartsFreshPage) {
  TempDir dir;
  HybridLog log;
  ASSERT_TRUE(log.Open(SmallLog(dir)).ok());
  Address a;
  char* mem;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(log.Allocate(100, &a, &mem).ok());
    log.EndAppend(a);
  }
  const Address old_tail = log.tail();
  ASSERT_TRUE(log.FlushAll().ok());
  ASSERT_TRUE(log.RestoreBoundaries(old_tail).ok());
  EXPECT_GE(log.tail(), old_tail);
  EXPECT_EQ(log.tail() % 4096, 0u) << "must restart on a page boundary";
  EXPECT_EQ(log.head_address(), log.tail());
  // New allocations work after restore.
  ASSERT_TRUE(log.Allocate(64, &a, &mem).ok());
  log.EndAppend(a);
  EXPECT_EQ(a, log.tail() - 64);
}

TEST(HybridLogTest, OversizedAllocationRejected) {
  TempDir dir;
  HybridLog log;
  ASSERT_TRUE(log.Open(SmallLog(dir, 8, 4096)).ok());
  Address a;
  char* mem;
  EXPECT_TRUE(log.Allocate(8192, &a, &mem).IsInvalidArgument());
}


TEST(HybridLogTest, ShiftBeginAddressIsMonotonicAndClamped) {
  TempDir dir;
  HybridLog log;
  HybridLogOptions o;
  o.page_size = 4096;
  o.mem_size = 8 * 4096;
  o.path = dir.File("log");
  ASSERT_TRUE(log.Open(o).ok());
  EXPECT_EQ(log.begin_address(), HybridLog::kLogBegin);
  // Cannot pass the read-only boundary.
  EXPECT_TRUE(log.ShiftBeginAddress(log.read_only_address() + 1)
                  .IsInvalidArgument());
  // Fill several pages so the read-only boundary advances.
  Address a;
  char* mem;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(log.Allocate(1024, &a, &mem).ok());
    log.EndAppend(a);
  }
  const Address ro = log.read_only_address();
  ASSERT_GT(ro, HybridLog::kLogBegin);
  ASSERT_TRUE(log.ShiftBeginAddress(ro).ok());
  EXPECT_EQ(log.begin_address(), ro);
  // Regressing is a silent no-op (monotonic).
  ASSERT_TRUE(log.ShiftBeginAddress(HybridLog::kLogBegin).ok());
  EXPECT_EQ(log.begin_address(), ro);
}

TEST(HybridLogTest, ShiftBeginKeepsFileSize) {
  TempDir dir;
  HybridLog log;
  HybridLogOptions o;
  o.page_size = 4096;
  o.mem_size = 8 * 4096;
  o.path = dir.File("log");
  ASSERT_TRUE(log.Open(o).ok());
  Address a;
  char* mem;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(log.Allocate(1024, &a, &mem).ok());
    log.EndAppend(a);
  }
  const uint64_t size_before = log.device()->FileSize();
  ASSERT_TRUE(log.ShiftBeginAddress(log.read_only_address()).ok());
  // Hole punching keeps the logical size; addresses stay file offsets.
  EXPECT_EQ(log.device()->FileSize(), size_before);
}

}  // namespace
}  // namespace mlkv
