// Property tests for the baseline engines: LSM and B+tree stores must also
// match a reference map under randomized op sequences across geometry
// grids — same methodology as store_property_test, so backend comparisons
// in the benchmarks compare correct engines, not differently-broken ones.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <unordered_map>

#include "btree/btree_store.h"
#include "common/random.h"
#include "io/temp_dir.h"
#include "lsm/lsm_store.h"

namespace mlkv {
namespace {

std::string ValueFor(Key key, uint64_t version, uint32_t size) {
  std::string v(size, '\0');
  Rng rng(Hash64(key) ^ version);
  for (auto& c : v) c = static_cast<char>(rng.Next() & 0xff);
  return v;
}

// ---------------- LSM ----------------

struct LsmGeometry {
  uint64_t memtable_bytes;
  uint32_t block_size;
  size_t l0_trigger;
};

class LsmPropertyTest : public ::testing::TestWithParam<LsmGeometry> {};

TEST_P(LsmPropertyTest, MatchesReferenceModelUnderRandomOps) {
  const LsmGeometry g = GetParam();
  TempDir dir;
  LsmOptions o;
  o.dir = dir.File("lsm");
  o.memtable_bytes = g.memtable_bytes;
  o.block_size = g.block_size;
  o.l0_compaction_trigger = g.l0_trigger;
  o.block_cache_bytes = 1 << 16;  // tiny cache: force block reads
  LsmStore store;
  ASSERT_TRUE(store.Open(o).ok());

  std::unordered_map<Key, std::string> reference;
  Rng rng(g.memtable_bytes ^ g.block_size);
  constexpr int kOps = 15000;
  constexpr Key kKeySpace = 600;
  for (int i = 0; i < kOps; ++i) {
    const Key key = rng.Uniform(kKeySpace);
    const int action = static_cast<int>(rng.Uniform(100));
    if (action < 45) {
      std::string got;
      const Status s = store.Get(key, &got);
      auto it = reference.find(key);
      if (it == reference.end()) {
        ASSERT_TRUE(s.IsNotFound()) << "op " << i << " key " << key;
      } else {
        ASSERT_TRUE(s.ok()) << "op " << i << " key " << key;
        ASSERT_EQ(got, it->second) << "op " << i << " key " << key;
      }
    } else if (action < 90) {
      const uint32_t size = 16 + static_cast<uint32_t>(rng.Uniform(48));
      const std::string v = ValueFor(key, i, size);
      ASSERT_TRUE(store.Put(key, v.data(),
                            static_cast<uint32_t>(v.size())).ok());
      reference[key] = v;
    } else {
      store.Delete(key).ok();
      reference.erase(key);
    }
  }
  for (const auto& [key, expected] : reference) {
    std::string got;
    ASSERT_TRUE(store.Get(key, &got).ok()) << "final key " << key;
    ASSERT_EQ(got, expected) << "final key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LsmPropertyTest,
    ::testing::Values(LsmGeometry{1024, 256, 2},    // constant flush+compact
                      LsmGeometry{4096, 512, 4},
                      LsmGeometry{16384, 4096, 3},
                      LsmGeometry{1 << 20, 4096, 4}),  // mostly memtable
    [](const ::testing::TestParamInfo<LsmGeometry>& info) {
      const LsmGeometry& g = info.param;
      return "mt" + std::to_string(g.memtable_bytes) + "_blk" +
             std::to_string(g.block_size) + "_l0x" +
             std::to_string(g.l0_trigger);
    });

// ---------------- B+tree ----------------

struct BtreeGeometry {
  uint32_t page_size;
  uint32_t value_size;
  uint64_t pool_pages;
};

class BtreePropertyTest : public ::testing::TestWithParam<BtreeGeometry> {};

TEST_P(BtreePropertyTest, MatchesReferenceModelUnderRandomOps) {
  const BtreeGeometry g = GetParam();
  TempDir dir;
  BTreeOptions o;
  o.path = dir.File("tree.db");
  o.page_size = g.page_size;
  o.value_size = g.value_size;
  o.buffer_pool_bytes = g.pool_pages * g.page_size;
  BTreeStore store;
  ASSERT_TRUE(store.Open(o).ok());

  std::unordered_map<Key, std::string> reference;
  Rng rng(g.page_size ^ g.value_size);
  constexpr int kOps = 15000;
  constexpr Key kKeySpace = 3000;
  std::vector<char> buf(g.value_size);
  for (int i = 0; i < kOps; ++i) {
    const Key key = rng.Uniform(kKeySpace);
    if (rng.Uniform(100) < 40) {
      const Status s = store.Get(key, buf.data());
      auto it = reference.find(key);
      if (it == reference.end()) {
        ASSERT_TRUE(s.IsNotFound()) << "op " << i << " key " << key;
      } else {
        ASSERT_TRUE(s.ok()) << "op " << i << " key " << key;
        ASSERT_EQ(std::memcmp(buf.data(), it->second.data(), g.value_size),
                  0)
            << "op " << i << " key " << key;
      }
    } else {
      const std::string v = ValueFor(key, i, g.value_size);
      ASSERT_TRUE(store.Put(key, v.data()).ok());
      reference[key] = v;
    }
  }
  for (const auto& [key, expected] : reference) {
    ASSERT_TRUE(store.Get(key, buf.data()).ok()) << "final key " << key;
    ASSERT_EQ(std::memcmp(buf.data(), expected.data(), g.value_size), 0)
        << "final key " << key;
  }
  // Flush everything and re-read through the (cold) pool.
  ASSERT_TRUE(store.FlushAll().ok());
  for (const auto& [key, expected] : reference) {
    ASSERT_TRUE(store.Get(key, buf.data()).ok());
    ASSERT_EQ(std::memcmp(buf.data(), expected.data(), g.value_size), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BtreePropertyTest,
    ::testing::Values(BtreeGeometry{4096, 16, 8},    // tiny pool: evict a lot
                      BtreeGeometry{4096, 64, 64},
                      BtreeGeometry{8192, 128, 16},
                      BtreeGeometry{4096, 500, 32}),  // ~7 entries per leaf
    [](const ::testing::TestParamInfo<BtreeGeometry>& info) {
      const BtreeGeometry& g = info.param;
      return "pg" + std::to_string(g.page_size) + "_val" +
             std::to_string(g.value_size) + "_pool" +
             std::to_string(g.pool_pages);
    });

}  // namespace
}  // namespace mlkv
