#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "btree/btree_store.h"
#include "btree/buffer_pool.h"
#include "common/random.h"
#include "io/temp_dir.h"

namespace mlkv {
namespace {

TEST(BufferPoolTest, PinMissLoadsFromDisk) {
  TempDir dir;
  FileDevice file;
  ASSERT_TRUE(file.Open(dir.File("pool.db")).ok());
  const char payload[] = "page-one-data";
  ASSERT_TRUE(file.WriteAt(4096, payload, sizeof(payload)).ok());
  BufferPool pool(&file, 4096, 4);
  char* data;
  ASSERT_TRUE(pool.Pin(1, &data).ok());
  EXPECT_EQ(std::memcmp(data, payload, sizeof(payload)), 0);
  pool.Unpin(1, false);
  EXPECT_EQ(pool.stats().misses, 1u);
  ASSERT_TRUE(pool.Pin(1, &data).ok());
  pool.Unpin(1, false);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, DirtyEvictionWritesBack) {
  TempDir dir;
  FileDevice file;
  ASSERT_TRUE(file.Open(dir.File("pool.db")).ok());
  BufferPool pool(&file, 4096, 2);
  PageId id;
  char* data;
  ASSERT_TRUE(pool.NewPage(&id, &data).ok());
  std::strcpy(data, "dirty-bytes");
  pool.Unpin(id, /*dirty=*/true);
  // Force eviction by filling the pool past capacity.
  for (int i = 0; i < 4; ++i) {
    PageId id2;
    ASSERT_TRUE(pool.NewPage(&id2, &data).ok());
    pool.Unpin(id2, true);
  }
  EXPECT_GT(pool.stats().writebacks, 0u);
  // Re-pin the first page: contents must come back from disk.
  ASSERT_TRUE(pool.Pin(id, &data).ok());
  EXPECT_STREQ(data, "dirty-bytes");
  pool.Unpin(id, false);
}

TEST(BufferPoolTest, PinnedPagesNeverEvicted) {
  TempDir dir;
  FileDevice file;
  ASSERT_TRUE(file.Open(dir.File("pool.db")).ok());
  BufferPool pool(&file, 4096, 2);
  PageId id;
  char* data;
  ASSERT_TRUE(pool.NewPage(&id, &data).ok());
  std::strcpy(data, "pinned");
  // Keep it pinned while cycling other pages through.
  for (int i = 0; i < 6; ++i) {
    PageId id2;
    char* d2;
    ASSERT_TRUE(pool.NewPage(&id2, &d2).ok());
    pool.Unpin(id2, false);
  }
  EXPECT_STREQ(data, "pinned") << "pinned frame must stay valid";
  pool.Unpin(id, true);
}

BTreeOptions SmallTree(const TempDir& dir, uint32_t value_size = 16,
                       uint64_t pool_bytes = 64 * 4096) {
  BTreeOptions o;
  o.path = dir.File("tree.db");
  o.page_size = 4096;
  o.buffer_pool_bytes = pool_bytes;
  o.value_size = value_size;
  return o;
}

void FillValue(Key k, uint32_t n, char* buf) {
  for (uint32_t i = 0; i < n; ++i) {
    buf[i] = static_cast<char>((k * 131 + i) & 0xff);
  }
}

TEST(BTreeTest, EmptyTreeGetNotFound) {
  TempDir dir;
  BTreeStore tree;
  ASSERT_TRUE(tree.Open(SmallTree(dir)).ok());
  char buf[16];
  EXPECT_TRUE(tree.Get(1, buf).IsNotFound());
}

TEST(BTreeTest, InsertAndGetSequential) {
  TempDir dir;
  BTreeStore tree;
  ASSERT_TRUE(tree.Open(SmallTree(dir)).ok());
  char buf[16];
  for (Key k = 0; k < 5000; ++k) {
    FillValue(k, 16, buf);
    ASSERT_TRUE(tree.Put(k, buf).ok()) << k;
  }
  EXPECT_GT(tree.stats().splits, 0u);
  EXPECT_GE(tree.stats().height, 2u);
  char out[16];
  for (Key k = 0; k < 5000; ++k) {
    ASSERT_TRUE(tree.Get(k, out).ok()) << k;
    FillValue(k, 16, buf);
    EXPECT_EQ(std::memcmp(out, buf, 16), 0) << k;
  }
}

TEST(BTreeTest, InsertRandomOrder) {
  TempDir dir;
  BTreeStore tree;
  ASSERT_TRUE(tree.Open(SmallTree(dir)).ok());
  std::vector<Key> keys(4000);
  for (Key k = 0; k < keys.size(); ++k) keys[k] = k * 7 + 1;
  Rng rng(5);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Uniform(i)]);
  }
  char buf[16];
  for (Key k : keys) {
    FillValue(k, 16, buf);
    ASSERT_TRUE(tree.Put(k, buf).ok()) << k;
  }
  char out[16];
  for (Key k : keys) {
    ASSERT_TRUE(tree.Get(k, out).ok()) << k;
    FillValue(k, 16, buf);
    EXPECT_EQ(std::memcmp(out, buf, 16), 0) << k;
  }
  EXPECT_FALSE(tree.Contains(0));  // 0 was never inserted (keys are 7k+1)
}

TEST(BTreeTest, UpdateInPlace) {
  TempDir dir;
  BTreeStore tree;
  ASSERT_TRUE(tree.Open(SmallTree(dir)).ok());
  char a[16], b[16];
  FillValue(1, 16, a);
  FillValue(2, 16, b);
  ASSERT_TRUE(tree.Put(42, a).ok());
  ASSERT_TRUE(tree.Put(42, b).ok());
  char out[16];
  ASSERT_TRUE(tree.Get(42, out).ok());
  EXPECT_EQ(std::memcmp(out, b, 16), 0);
}

TEST(BTreeTest, LargerThanPoolWorkingSet) {
  // Pool of 16 pages, data far larger: exercises eviction + write-back.
  TempDir dir;
  BTreeStore tree;
  ASSERT_TRUE(tree.Open(SmallTree(dir, 64, 16 * 4096)).ok());
  char buf[64];
  for (Key k = 0; k < 20000; ++k) {
    FillValue(k, 64, buf);
    ASSERT_TRUE(tree.Put(k, buf).ok()) << k;
  }
  EXPECT_GT(tree.stats().writebacks, 0u);
  char out[64];
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const Key k = rng.Uniform(20000);
    ASSERT_TRUE(tree.Get(k, out).ok()) << k;
    FillValue(k, 64, buf);
    EXPECT_EQ(std::memcmp(out, buf, 64), 0) << k;
  }
}

TEST(BTreeTest, ConcurrentReadersWithWriter) {
  TempDir dir;
  BTreeStore tree;
  ASSERT_TRUE(tree.Open(SmallTree(dir, 16)).ok());
  char buf[16];
  for (Key k = 0; k < 2000; ++k) {
    FillValue(k, 16, buf);
    ASSERT_TRUE(tree.Put(k, buf).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      char out[16], expect[16];
      while (!stop.load()) {
        const Key k = rng.Uniform(2000);
        if (!tree.Get(k, out).ok()) {
          errors.fetch_add(1);
          continue;
        }
        FillValue(k, 16, expect);
        if (std::memcmp(out, expect, 16) != 0) {
          // Writer may have bumped it to the writer pattern; both valid.
          FillValue(k + 100000, 16, expect);
          if (std::memcmp(out, expect, 16) != 0) errors.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {
    Rng rng(99);
    char w[16];
    while (!stop.load()) {
      const Key k = rng.Uniform(2000);
      FillValue(k + 100000, 16, w);
      tree.Put(k, w).ok();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(BTreeTest, OpenRejectsOversizedValues) {
  TempDir dir;
  BTreeOptions o = SmallTree(dir);
  o.value_size = 4096;  // leaves could not hold 2 entries
  BTreeStore tree;
  EXPECT_TRUE(tree.Open(o).IsInvalidArgument());
}

}  // namespace
}  // namespace mlkv
