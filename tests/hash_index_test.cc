#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "io/file_device.h"
#include "io/temp_dir.h"
#include "kv/hash_index.h"

namespace mlkv {
namespace {

TEST(HashIndexTest, RoundsSlotsToPowerOfTwo) {
  HashIndex idx(1000);
  EXPECT_EQ(idx.num_slots(), 1024u);
  HashIndex tiny(1);
  EXPECT_EQ(tiny.num_slots(), 16u);
}

TEST(HashIndexTest, EmptySlotsReadInvalid) {
  HashIndex idx(64);
  for (Key k = 0; k < 100; ++k) EXPECT_EQ(idx.Load(k), kInvalidAddress);
  EXPECT_EQ(idx.CountUsed(), 0u);
}

TEST(HashIndexTest, CompareExchangePublishes) {
  HashIndex idx(64);
  Address expected = kInvalidAddress;
  EXPECT_TRUE(idx.CompareExchange(7, expected, 0x100));
  EXPECT_EQ(idx.Load(7), 0x100u);
  // Second CAS with stale expected fails and reports current value.
  expected = kInvalidAddress;
  EXPECT_FALSE(idx.CompareExchange(7, expected, 0x200));
  EXPECT_EQ(expected, 0x100u);
}

TEST(HashIndexTest, ConcurrentCasOneWinnerPerSlot) {
  HashIndex idx(16);
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Address expected = kInvalidAddress;
      if (idx.CompareExchange(42, expected,
                              static_cast<Address>(0x1000 + t))) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST(HashIndexTest, CheckpointRoundTrip) {
  TempDir dir;
  HashIndex idx(256);
  for (Key k = 0; k < 100; ++k) {
    Address e = kInvalidAddress;
    idx.CompareExchange(k, e, 0x40 + k * 8);
  }
  const uint64_t used = idx.CountUsed();
  EXPECT_GT(used, 0u);

  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("idx")).ok());
  ASSERT_TRUE(idx.WriteTo(&dev, 0).ok());

  HashIndex restored(256);
  ASSERT_TRUE(restored.ReadFrom(dev, 0).ok());
  EXPECT_EQ(restored.CountUsed(), used);
  for (Key k = 0; k < 100; ++k) EXPECT_EQ(restored.Load(k), idx.Load(k));
}


TEST(HashIndexGrowTest, GrowDoublesSlotCount) {
  HashIndex idx(64);
  ASSERT_TRUE(idx.Grow().ok());
  EXPECT_EQ(idx.num_slots(), 128u);
  ASSERT_TRUE(idx.Grow(2).ok());
  EXPECT_EQ(idx.num_slots(), 512u);
}

TEST(HashIndexGrowTest, GrowZeroIsANoOp) {
  HashIndex idx(64);
  ASSERT_TRUE(idx.Grow(0).ok());
  EXPECT_EQ(idx.num_slots(), 64u);
}

TEST(HashIndexGrowTest, RejectsAbsurdFactor) {
  HashIndex idx(64);
  EXPECT_TRUE(idx.Grow(40).IsInvalidArgument());
}

TEST(HashIndexGrowTest, ChainsRemainReachableAfterGrowth) {
  HashIndex idx(16);
  // Publish a head for many keys; most slots carry multi-key chains.
  for (Key k = 0; k < 200; ++k) {
    Address e = idx.Load(k);
    idx.CompareExchange(k, e, 0x40 + k * 8);
  }
  std::vector<Address> before(200);
  for (Key k = 0; k < 200; ++k) before[k] = idx.Load(k);
  ASSERT_TRUE(idx.Grow(3).ok());  // 16 -> 128 slots
  for (Key k = 0; k < 200; ++k) {
    // The head a key observes after growth must be the head its old slot
    // held (all candidate new slots were seeded with it).
    EXPECT_EQ(idx.Load(k), before[k]) << "key " << k;
  }
}

TEST(HashIndexGrowTest, NewPublishesUseRefinedSlots) {
  HashIndex idx(16);
  Key a = 0;
  // Find two keys that collide at 16 slots but separate at 32.
  Key b = 0;
  bool found = false;
  for (Key cand = 1; cand < 100000 && !found; ++cand) {
    if ((Hash64(cand) & 15) == (Hash64(a) & 15) &&
        (Hash64(cand) & 31) != (Hash64(a) & 31)) {
      b = cand;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  Address e = idx.Load(a);
  idx.CompareExchange(a, e, 0x100);
  EXPECT_EQ(idx.Load(b), Address{0x100});  // shared slot pre-growth
  ASSERT_TRUE(idx.Grow().ok());
  // Publish b's record: lands in its refined slot, leaving a's untouched.
  e = idx.Load(b);
  idx.CompareExchange(b, e, 0x200);
  EXPECT_EQ(idx.Load(b), Address{0x200});
  EXPECT_EQ(idx.Load(a), Address{0x100});
}

}  // namespace
}  // namespace mlkv
