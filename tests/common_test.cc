#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace mlkv {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, AllConstructorsMatchPredicates) {
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto f = []() -> Status {
    MLKV_RETURN_NOT_OK(Status::IOError("disk"));
    return Status::OK();
  };
  EXPECT_TRUE(f().IsIOError());
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good(7);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  StatusOr<int> bad(Status::NotFound());
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
}

TEST(SliceTest, CompareAndEquality) {
  EXPECT_EQ(Slice("abc"), Slice("abc"));
  EXPECT_NE(Slice("abc"), Slice("abd"));
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("b").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice().empty());
}

TEST(HashTest, Hash64IsDeterministicAndSpreads) {
  EXPECT_EQ(Hash64(12345), Hash64(12345));
  // Consecutive keys should land in different low-bit buckets most of the
  // time; require at least 900 distinct of 1024 in the low 10 bits domain.
  std::set<uint64_t> buckets;
  for (uint64_t i = 0; i < 4096; ++i) buckets.insert(Hash64(i) & 1023);
  EXPECT_GE(buckets.size(), 900u);
}

TEST(HashTest, HashBytesDiffersByContent) {
  EXPECT_NE(HashBytes("hello", 5), HashBytes("hellp", 5));
  EXPECT_NE(HashBytes("hello", 5), HashBytes("hello", 4));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(7);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(ZipfianTest, SkewsTowardSmallRanks) {
  ZipfianGenerator gen(1000, 0.99, 3);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[gen.Next()]++;
  // Rank 0 must dominate rank 100 heavily under theta=0.99.
  EXPECT_GT(counts[0], 20 * std::max(counts[100], 1));
  for (const auto& [v, c] : counts) EXPECT_LT(v, 1000u);
}

TEST(ZipfianTest, ScrambledCoversSpaceButStaysSkewed) {
  ZipfianGenerator gen(100000, 0.99, 5);
  std::map<uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[gen.NextScrambled()]++;
  int max_count = 0;
  for (const auto& [v, c] : counts) max_count = std::max(max_count, c);
  // Hot key still absorbs far more than uniform share (2 per key).
  EXPECT_GT(max_count, 1000);
}

TEST(HistogramTest, PercentilesOrderedAndMeanExact) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  EXPECT_LE(h.Percentile(0.50), h.Percentile(0.95));
  EXPECT_LE(h.Percentile(0.95), h.Percentile(0.99));
  // Log-bucketed: p50 within ~7% of true median.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 500.0, 40.0);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(HistogramTest, MergeAggregates) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.sum(), 1010u);
}

TEST(HistogramTest, PercentileOneIsExactMax) {
  Histogram h;
  EXPECT_EQ(h.Percentile(1.0), 0u);  // empty: no samples, no max
  h.Record(3);
  h.Record(123456789);
  // q=1.0 bypasses bucket interpolation and returns the tracked max
  // exactly, even when the max lands mid-bucket.
  EXPECT_EQ(h.Percentile(1.0), 123456789u);
  EXPECT_EQ(h.Percentile(2.0), 123456789u);  // clamped
}

TEST(HistogramTest, CountAtOrBelowIsCumulative) {
  Histogram h;
  h.Record(5);
  h.Record(50);
  h.Record(500);
  EXPECT_EQ(h.CountAtOrBelow(4), 0u);
  EXPECT_EQ(h.CountAtOrBelow(5), 1u);
  EXPECT_EQ(h.CountAtOrBelow(100), 2u);
  EXPECT_EQ(h.CountAtOrBelow(UINT64_MAX), 3u);
}

TEST(HistogramTest, SnapshotStringCarriesTheSummary) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  const std::string s = h.SnapshotString();
  EXPECT_NE(s.find("count=100"), std::string::npos);
  EXPECT_NE(s.find("max=100"), std::string::npos);
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p999="), std::string::npos);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> n{0};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(pool.Submit([&n] { n.fetch_add(1); }));
  }
  pool.Drain();
  EXPECT_EQ(n.load(), 1000);
}

TEST(ThreadPoolTest, TrySubmitBackpressure) {
  ThreadPool pool(1, /*max_queue=*/2);
  std::atomic<bool> release{false};
  ASSERT_TRUE(pool.Submit([&] {
    while (!release.load()) std::this_thread::yield();
  }));
  // Fill the queue; eventually TrySubmit must refuse.
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (pool.TrySubmit([] {})) ++accepted;
  }
  EXPECT_LE(accepted, 2);
  release.store(true);
  pool.Drain();
}

TEST(ThreadPoolTest, ShutdownRejectsNewWork) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

}  // namespace
}  // namespace mlkv
