// Tests for MLKV's bounded staleness consistency protocol (paper §III-C1):
// Get increments the record's staleness counter and waits while it exceeds
// the bound; Put decrements it and never waits; bound 0 = BSP, huge = ASP.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "io/temp_dir.h"
#include "kv/faster_store.h"

namespace mlkv {
namespace {

FasterOptions TrackedStore(const TempDir& dir, uint32_t bound,
                           uint64_t spin_limit = 1ull << 14) {
  FasterOptions o;
  o.path = dir.File("tracked.log");
  o.index_slots = 1024;
  o.page_size = 4096;
  o.mem_size = 8 * 4096;
  o.track_staleness = true;
  o.staleness_bound = bound;
  o.busy_spin_limit = spin_limit;
  return o;
}

TEST(StalenessTest, GetIncrementsPutDecrements) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(TrackedStore(dir, /*bound=*/10)).ok());
  double v = 1.5;
  ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());
  double out;
  // Three reads, no writes: staleness climbs to 3 (still below bound 10).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.Read(1, &out, sizeof(out)).ok());
    EXPECT_EQ(out, 1.5);
  }
  // A fourth read with per-op bound 2 must hit the wall and return Busy
  // after the spin limit (no writer will ever come).
  EXPECT_TRUE(store.Read(1, &out, sizeof(out), nullptr, /*bound=*/2).IsBusy());
  // One Put drops staleness to 2: the same bounded read now succeeds.
  v = 2.5;
  ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());
  EXPECT_TRUE(store.Read(1, &out, sizeof(out), nullptr, /*bound=*/3).ok());
  EXPECT_EQ(out, 2.5);
}

TEST(StalenessTest, BspBoundZeroSerializesReadersBehindWriter) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(TrackedStore(dir, /*bound=*/0, 1ull << 26)).ok());
  double v = 0.0;
  ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());

  // Reader 1 succeeds (staleness 0 <= 0) and bumps staleness to 1.
  double out;
  ASSERT_TRUE(store.Read(1, &out, sizeof(out)).ok());

  // Reader 2 must block until the writer's Put lands.
  std::atomic<bool> reader_done{false};
  std::thread reader([&] {
    double r;
    ASSERT_TRUE(store.Read(1, &r, sizeof(r)).ok());
    EXPECT_EQ(r, 7.0);  // must observe the post-Put value
    reader_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(reader_done.load()) << "BSP read must wait for the update";
  v = 7.0;
  ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());
  reader.join();
  EXPECT_TRUE(reader_done.load());
  EXPECT_GT(store.stats().staleness_waits, 0u);
}

TEST(StalenessTest, AspNeverWaits) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(TrackedStore(dir, UINT32_MAX - 1)).ok());
  double v = 1.0;
  ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());
  double out;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(store.Read(1, &out, sizeof(out)).ok());
  }
  EXPECT_EQ(store.stats().staleness_waits, 0u);
  EXPECT_EQ(store.stats().busy_aborts, 0u);
}

TEST(StalenessTest, PutNeverWaitsEvenAtBound) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(TrackedStore(dir, /*bound=*/1)).ok());
  double v = 0.0;
  ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());
  double out;
  ASSERT_TRUE(store.Read(1, &out, sizeof(out)).ok());  // staleness -> 1
  // Puts proceed regardless of the staleness level (§III-C1: "a Put
  // operation can skip this step because it only reduces the staleness").
  for (int i = 0; i < 100; ++i) {
    v = i;
    ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());
  }
  EXPECT_EQ(store.stats().staleness_waits, 0u);
}

TEST(StalenessTest, StalenessSaturatesAtZero) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(TrackedStore(dir, /*bound=*/0)).ok());
  double v = 0.0;
  ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());
  // Many Puts with no Gets: staleness must not underflow (wrap to huge).
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());
  }
  double out;
  // If staleness wrapped, this bound-0 read would block forever.
  EXPECT_TRUE(store.Read(1, &out, sizeof(out)).ok());
}

TEST(StalenessTest, BoundSurvivesRcuToNewVersion) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(TrackedStore(dir, /*bound=*/4)).ok());
  std::vector<char> small(16, 'a'), big(32, 'b');
  ASSERT_TRUE(store.Upsert(1, small.data(), 16).ok());
  char out[32];
  // Two reads: staleness 2.
  ASSERT_TRUE(store.Read(1, out, 16).ok());
  ASSERT_TRUE(store.Read(1, out, 16).ok());
  // Size-changing Put forces RCU; new version must carry staleness 2-1=1.
  ASSERT_TRUE(store.Upsert(1, big.data(), 32).ok());
  // Bound-1 read succeeds only if staleness carried over as 1.
  ASSERT_TRUE(store.Read(1, out, 32, nullptr, /*bound=*/1).ok());
  // That read pushed staleness to 2; a bound-1 read now fails.
  EXPECT_TRUE(store.Read(1, out, 32, nullptr, /*bound=*/1).IsBusy());
}

TEST(StalenessTest, PromotionPreservesStaleness) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(TrackedStore(dir, /*bound=*/8)).ok());
  std::vector<char> value(16, 'v');
  ASSERT_TRUE(store.Upsert(1, value.data(), 16).ok());
  char out[16];
  // Staleness 3.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(store.Read(1, out, 16).ok());
  // Evict key 1 by writing many other records.
  std::vector<char> filler(128, 'f');
  for (Key k = 100; k < 800; ++k) {
    ASSERT_TRUE(store.Upsert(k, filler.data(), 128).ok());
  }
  ASSERT_FALSE(store.IsInMemory(1));
  // Promote back to the mutable region "with the original staleness".
  ASSERT_TRUE(store.Promote(1).ok());
  ASSERT_TRUE(store.IsInMemory(1));
  // A bound-2 read must fail (staleness is still 3)...
  EXPECT_TRUE(store.Read(1, out, 16, nullptr, /*bound=*/2).IsBusy());
  // ...and a bound-3 read succeeds.
  EXPECT_TRUE(store.Read(1, out, 16, nullptr, /*bound=*/3).ok());
}

TEST(StalenessTest, GenerationAdvancesOnPuts) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(TrackedStore(dir, /*bound=*/100)).ok());
  double v = 0;
  ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());
  }
  // Interleaved reads still see consistent values; generation is internal,
  // but 5 in-place updates must be recorded.
  EXPECT_EQ(store.stats().inplace_updates, 5u);
}

TEST(StalenessTest, ConcurrentPipelineRespectsBound) {
  // Emulates an async training pipeline: a reader thread Gets key k and a
  // writer thread Puts it back, with the reader allowed to run at most
  // `bound` Gets ahead. Verify the observed lead never exceeds bound + 1.
  TempDir dir;
  constexpr uint32_t kBound = 4;
  FasterStore store;
  ASSERT_TRUE(store.Open(TrackedStore(dir, kBound, 1ull << 30)).ok());
  double v = 0.0;
  ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());

  constexpr int kOps = 3000;
  std::atomic<int> gets_done{0}, puts_done{0};
  std::atomic<int> max_lead{0};
  std::thread reader([&] {
    double out;
    for (int i = 0; i < kOps; ++i) {
      ASSERT_TRUE(store.Read(1, &out, sizeof(out)).ok());
      const int lead =
          gets_done.fetch_add(1) + 1 - puts_done.load(std::memory_order_acquire);
      int prev = max_lead.load();
      while (lead > prev && !max_lead.compare_exchange_weak(prev, lead)) {
      }
    }
  });
  std::thread writer([&] {
    double val = 1.0;
    for (int i = 0; i < kOps; ++i) {
      // A training pipeline issues one Put per completed Get; pace the
      // writer behind the reader so decrements never saturate at zero and
      // strand the reader against the bound.
      while (puts_done.load(std::memory_order_acquire) >=
             gets_done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      if (i % 64 == 0) std::this_thread::yield();
      ASSERT_TRUE(store.Upsert(1, &val, sizeof(val)).ok());
      puts_done.fetch_add(1, std::memory_order_release);
    }
  });
  reader.join();
  writer.join();
  // The staleness counter allows at most kBound outstanding reads beyond
  // writes at Get admission; measured lead adds one for the in-flight op.
  EXPECT_LE(max_lead.load(), static_cast<int>(kBound) + 1);
}

TEST(StalenessTest, UntrackedModeHasNoStalenessEffects) {
  TempDir dir;
  FasterOptions o = TrackedStore(dir, 0);
  o.track_staleness = false;  // plain FASTER
  FasterStore store;
  ASSERT_TRUE(store.Open(o).ok());
  double v = 1.0;
  ASSERT_TRUE(store.Upsert(1, &v, sizeof(v)).ok());
  double out;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Read(1, &out, sizeof(out)).ok());
  }
  EXPECT_EQ(store.stats().staleness_waits, 0u);
  EXPECT_EQ(store.stats().busy_aborts, 0u);
}

}  // namespace
}  // namespace mlkv
