// Model substrate tests. The load-bearing ones are the numerical gradient
// checks: every analytic backward pass is verified against central finite
// differences, which is what makes the convergence benchmarks trustworthy.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/ctr_models.h"
#include "ml/gnn_models.h"
#include "ml/kge_models.h"
#include "ml/layers.h"
#include "ml/metrics.h"
#include "ml/tensor.h"

namespace mlkv {
namespace {

TEST(TensorTest, MatMulMatchesHand) {
  Tensor x(2, 3), w(3, 2), out;
  // x = [[1,2,3],[4,5,6]]; w = [[1,0],[0,1],[1,1]]
  float xv[] = {1, 2, 3, 4, 5, 6};
  float wv[] = {1, 0, 0, 1, 1, 1};
  std::copy(xv, xv + 6, x.data());
  std::copy(wv, wv + 6, w.data());
  MatMul(x, w, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 4);
  EXPECT_FLOAT_EQ(out.at(0, 1), 5);
  EXPECT_FLOAT_EQ(out.at(1, 0), 10);
  EXPECT_FLOAT_EQ(out.at(1, 1), 11);
}

TEST(TensorTest, SigmoidStableAtExtremes) {
  EXPECT_NEAR(Sigmoid(0.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(Sigmoid(100.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(Sigmoid(-100.0f), 0.0f, 1e-6f);
  EXPECT_FALSE(std::isnan(Sigmoid(1000.0f)));
  EXPECT_FALSE(std::isnan(Sigmoid(-1000.0f)));
}

TEST(MetricsTest, AucPerfectAndRandomAndInverted) {
  AucAccumulator perfect;
  for (int i = 0; i < 50; ++i) {
    perfect.Add(1.0f + i, true);
    perfect.Add(-1.0f - i, false);
  }
  EXPECT_DOUBLE_EQ(perfect.Compute(), 1.0);

  AucAccumulator inverted;
  for (int i = 0; i < 50; ++i) {
    inverted.Add(-1.0f - i, true);
    inverted.Add(1.0f + i, false);
  }
  EXPECT_DOUBLE_EQ(inverted.Compute(), 0.0);

  AucAccumulator ties;
  for (int i = 0; i < 50; ++i) {
    ties.Add(0.0f, true);
    ties.Add(0.0f, false);
  }
  EXPECT_NEAR(ties.Compute(), 0.5, 1e-9);
}

TEST(MetricsTest, AucDegenerateSingleClass) {
  AucAccumulator a;
  a.Add(1.0f, true);
  a.Add(2.0f, true);
  EXPECT_DOUBLE_EQ(a.Compute(), 0.5);
}

TEST(MetricsTest, HitsAtKCountsRankCorrectly) {
  HitsAtK hits(10);
  std::vector<float> negs;
  for (int i = 0; i < 100; ++i) negs.push_back(static_cast<float>(i));
  hits.Add(99.5f, negs);   // rank 1 -> hit
  hits.Add(89.5f, negs);   // 10 negatives above -> rank 11 -> miss
  hits.Add(91.5f, negs);   // 8 above -> rank 9 -> hit
  EXPECT_NEAR(hits.Compute(), 2.0 / 3.0, 1e-9);
}

TEST(MetricsTest, AccuracyBasic) {
  AccuracyAccumulator acc;
  acc.Add(1, 1);
  acc.Add(2, 1);
  acc.Add(0, 0);
  EXPECT_NEAR(acc.Compute(), 2.0 / 3.0, 1e-9);
}

TEST(LayersTest, BceLossAndGradSigns) {
  Tensor logits(2, 1);
  logits.at(0, 0) = 2.0f;   // confident positive
  logits.at(1, 0) = -2.0f;  // confident negative
  Tensor grad;
  const float loss_good = BceWithLogits(logits, {1.0f, 0.0f}, &grad);
  EXPECT_LT(grad.at(0, 0), 0.01f);
  EXPECT_GT(grad.at(1, 0), -0.01f);
  const float loss_bad = BceWithLogits(logits, {0.0f, 1.0f}, &grad);
  EXPECT_GT(loss_bad, loss_good);
  EXPECT_GT(grad.at(0, 0), 0.0f);  // push logit down
  EXPECT_LT(grad.at(1, 0), 0.0f);  // push logit up
}

// ---------- numerical gradient checks ----------

// Loss used for checks: L = sum(sigmoid(logit_i) * c_i) with fixed c.
float CheckLoss(const Tensor& logits, const std::vector<float>& c) {
  float l = 0;
  for (size_t i = 0; i < logits.rows(); ++i) {
    for (size_t j = 0; j < logits.cols(); ++j) {
      l += Sigmoid(logits.at(i, j)) * c[i * logits.cols() + j];
    }
  }
  return l;
}

void CheckLossGrad(const Tensor& logits, const std::vector<float>& c,
                   Tensor* grad) {
  grad->Resize(logits.rows(), logits.cols());
  for (size_t i = 0; i < logits.rows(); ++i) {
    for (size_t j = 0; j < logits.cols(); ++j) {
      const float s = Sigmoid(logits.at(i, j));
      grad->at(i, j) = s * (1 - s) * c[i * logits.cols() + j];
    }
  }
}

template <typename ForwardFn>
void NumericalGradCheck(Tensor* input, const Tensor& analytic_grad,
                        ForwardFn forward, float tolerance = 2e-2f) {
  // Sample a few coordinates; central differences.
  Rng rng(99);
  const float eps = 1e-2f;
  int checked = 0;
  for (int trial = 0; trial < 24; ++trial) {
    const size_t i = rng.Uniform(input->size());
    float* v = input->data() + i;
    const float orig = *v;
    *v = orig + eps;
    const float lp = forward();
    *v = orig - eps;
    const float lm = forward();
    *v = orig;
    const float numeric = (lp - lm) / (2 * eps);
    const float analytic = analytic_grad.data()[i];
    if (std::fabs(numeric) < 1e-4f && std::fabs(analytic) < 1e-4f) continue;
    EXPECT_NEAR(analytic, numeric,
                tolerance * std::max(1.0f, std::fabs(numeric)))
        << "coordinate " << i;
    ++checked;
  }
  EXPECT_GT(checked, 3) << "gradient check sampled only trivial coordinates";
}

TEST(GradCheckTest, FfnnInputGradient) {
  const size_t input_dim = 12;
  FfnnModel model(input_dim, /*seed=*/7);
  Tensor x(4, input_dim);
  Rng rng(3);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.NextGaussian()) * 0.5f;
  }
  std::vector<float> c(4);
  for (auto& v : c) v = static_cast<float>(rng.NextGaussian());

  auto forward = [&]() { return CheckLoss(model.Forward(x), c); };
  forward();
  Tensor gl;
  CheckLossGrad(model.Forward(x), c, &gl);
  Tensor gx = model.Backward(gl);
  NumericalGradCheck(&x, gx, forward);
}

TEST(GradCheckTest, DcnInputGradient) {
  const size_t input_dim = 10;
  DcnModel model(input_dim, 2, /*seed=*/11);
  Tensor x(3, input_dim);
  Rng rng(5);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.NextGaussian()) * 0.5f;
  }
  std::vector<float> c(3);
  for (auto& v : c) v = static_cast<float>(rng.NextGaussian());

  auto forward = [&]() { return CheckLoss(model.Forward(x), c); };
  Tensor gl;
  CheckLossGrad(model.Forward(x), c, &gl);
  Tensor gx = model.Backward(gl);
  NumericalGradCheck(&x, gx, forward);
}

TEST(GradCheckTest, DistMultGradients) {
  const uint32_t dim = 8;
  Rng rng(13);
  std::vector<float> h(dim), r(dim), t(dim);
  for (uint32_t i = 0; i < dim; ++i) {
    h[i] = static_cast<float>(rng.NextGaussian()) * 0.5f;
    r[i] = static_cast<float>(rng.NextGaussian()) * 0.5f;
    t[i] = static_cast<float>(rng.NextGaussian()) * 0.5f;
  }
  std::vector<float> gh(dim, 0), gr(dim, 0), gt(dim, 0);
  DistMult::Grad(h.data(), r.data(), t.data(), dim, 1.0f, gh.data(),
                 gr.data(), gt.data());
  const float eps = 1e-3f;
  for (uint32_t i = 0; i < dim; ++i) {
    auto check = [&](std::vector<float>& vec, float analytic) {
      const float orig = vec[i];
      vec[i] = orig + eps;
      const float sp = DistMult::Score(h.data(), r.data(), t.data(), dim);
      vec[i] = orig - eps;
      const float sm = DistMult::Score(h.data(), r.data(), t.data(), dim);
      vec[i] = orig;
      EXPECT_NEAR(analytic, (sp - sm) / (2 * eps), 1e-3f);
    };
    check(h, gh[i]);
    check(r, gr[i]);
    check(t, gt[i]);
  }
}

TEST(GradCheckTest, ComplExGradients) {
  const uint32_t dim = 8;  // complex dim 4
  Rng rng(17);
  std::vector<float> h(dim), r(dim), t(dim);
  for (uint32_t i = 0; i < dim; ++i) {
    h[i] = static_cast<float>(rng.NextGaussian()) * 0.5f;
    r[i] = static_cast<float>(rng.NextGaussian()) * 0.5f;
    t[i] = static_cast<float>(rng.NextGaussian()) * 0.5f;
  }
  std::vector<float> gh(dim, 0), gr(dim, 0), gt(dim, 0);
  ComplEx::Grad(h.data(), r.data(), t.data(), dim, 1.0f, gh.data(), gr.data(),
                gt.data());
  const float eps = 1e-3f;
  for (uint32_t i = 0; i < dim; ++i) {
    auto check = [&](std::vector<float>& vec, float analytic) {
      const float orig = vec[i];
      vec[i] = orig + eps;
      const float sp = ComplEx::Score(h.data(), r.data(), t.data(), dim);
      vec[i] = orig - eps;
      const float sm = ComplEx::Score(h.data(), r.data(), t.data(), dim);
      vec[i] = orig;
      EXPECT_NEAR(analytic, (sp - sm) / (2 * eps), 1e-3f);
    };
    check(h, gh[i]);
    check(r, gr[i]);
    check(t, gt[i]);
  }
}

template <typename Model>
void GnnGradCheck(Model& model, uint32_t dim, size_t fanout) {
  GnnBatch batch;
  batch.fanout = fanout;
  batch.self.Resize(3, dim);
  batch.neighbors.Resize(3 * fanout, dim);
  Rng rng(23);
  for (size_t i = 0; i < batch.self.size(); ++i) {
    batch.self.data()[i] = static_cast<float>(rng.NextGaussian()) * 0.5f;
  }
  for (size_t i = 0; i < batch.neighbors.size(); ++i) {
    batch.neighbors.data()[i] = static_cast<float>(rng.NextGaussian()) * 0.5f;
  }
  std::vector<float> c(3 * 4);  // 4 classes
  for (auto& v : c) v = static_cast<float>(rng.NextGaussian());

  auto forward = [&]() { return CheckLoss(model.Forward(batch), c); };
  Tensor gl;
  CheckLossGrad(model.Forward(batch), c, &gl);
  Tensor gs, gn;
  model.Backward(gl, &gs, &gn);
  NumericalGradCheck(&batch.self, gs, forward, 3e-2f);
  NumericalGradCheck(&batch.neighbors, gn, forward, 3e-2f);
}

TEST(GradCheckTest, GraphSageEmbeddingGradients) {
  GraphSageModel model(6, 8, 4, /*seed=*/29);
  GnnGradCheck(model, 6, 3);
}

TEST(GradCheckTest, GatEmbeddingGradients) {
  GatModel model(6, 8, 4, /*seed=*/31);
  GnnGradCheck(model, 6, 3);
}

TEST(GnnTest, SoftmaxCrossEntropyGradSumsToZeroPerRow) {
  Tensor logits(2, 4);
  Rng rng(37);
  for (size_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  Tensor grad;
  const float loss = SoftmaxCrossEntropy(logits, {1, 3}, &grad);
  EXPECT_GT(loss, 0.0f);
  for (size_t b = 0; b < 2; ++b) {
    float s = 0;
    for (size_t c = 0; c < 4; ++c) s += grad.at(b, c);
    EXPECT_NEAR(s, 0.0f, 1e-6f);
  }
}

TEST(TrainabilityTest, FfnnLearnsLinearlySeparableData) {
  // Tiny sanity: FFNN must fit a separable 2-D problem quickly.
  FfnnModel model(2, /*seed=*/41, /*lr=*/0.1f);
  Rng rng(43);
  Tensor x(32, 2), grad;
  std::vector<float> labels(32);
  float last_loss = 1e9f;
  for (int step = 0; step < 200; ++step) {
    for (int i = 0; i < 32; ++i) {
      const float a = static_cast<float>(rng.NextGaussian());
      const float b = static_cast<float>(rng.NextGaussian());
      x.at(i, 0) = a;
      x.at(i, 1) = b;
      labels[i] = a + b > 0 ? 1.0f : 0.0f;
    }
    const Tensor& logits = model.Forward(x);
    last_loss = BceWithLogits(logits, labels, &grad);
    model.Backward(grad);
    model.Step();
  }
  EXPECT_LT(last_loss, 0.25f);
}

}  // namespace
}  // namespace mlkv
