#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "epoch/epoch_manager.h"

namespace mlkv {
namespace {

TEST(EpochTest, ProtectUnprotectTogglesState) {
  EpochManager em;
  EXPECT_FALSE(em.IsProtected());
  em.Protect();
  EXPECT_TRUE(em.IsProtected());
  em.Unprotect();
  EXPECT_FALSE(em.IsProtected());
}

TEST(EpochTest, ActionRunsOnlyAfterSafe) {
  EpochManager em;
  std::atomic<bool> ran{false};

  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  std::thread reader([&] {
    EpochGuard g(&em);
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!entered.load()) std::this_thread::yield();

  em.BumpWithAction([&] { ran.store(true); });
  em.TryBumpActions();
  EXPECT_FALSE(ran.load()) << "action must not run while a thread is inside";

  release.store(true);
  reader.join();
  em.DrainAll();
  EXPECT_TRUE(ran.load());
}

TEST(EpochTest, SafeEpochTracksSlowestThread) {
  EpochManager em;
  const uint64_t e0 = em.Protect();
  em.BumpWithAction([] {});
  EXPECT_LE(em.ComputeSafeEpoch(), e0);
  em.Unprotect();
  EXPECT_GT(em.ComputeSafeEpoch(), e0);
  em.DrainAll();
}

TEST(EpochTest, ManyActionsAllRun) {
  EpochManager em;
  std::atomic<int> n{0};
  for (int i = 0; i < 100; ++i) em.BumpWithAction([&n] { n.fetch_add(1); });
  em.DrainAll();
  EXPECT_EQ(n.load(), 100);
}

TEST(EpochTest, ConcurrentProtectStress) {
  EpochManager em;
  std::atomic<int> actions{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        EpochGuard g(&em);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    em.BumpWithAction([&actions] { actions.fetch_add(1); });
    em.TryBumpActions();
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  em.DrainAll();
  EXPECT_EQ(actions.load(), 200);
}

}  // namespace
}  // namespace mlkv
