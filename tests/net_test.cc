// Net subsystem tests: wire round-trips and bounds-checked parsing,
// corrupt/truncated-frame rejection, the version-mismatch handshake
// failure, server lifecycle (Stop with in-flight requests, post-Stop
// connects), op counters, and the pooled RemoteBackend under concurrent
// callers. Everything runs over in-process loopback sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "backend/kv_backend.h"
#include "common/clock.h"
#include "io/temp_dir.h"
#include "net/kv_server.h"
#include "net/remote_backend.h"
#include "net/socket.h"
#include "net/wire.h"

namespace mlkv {
namespace net {
namespace {

// --- wire round-trips ----------------------------------------------------

TEST(WireTest, FrameHeaderRoundTrip) {
  FrameHeader h;
  h.opcode = Opcode::kMultiGet;
  h.flags = kFlagResponse;
  h.request_id = 0x0123456789ABCDEFull;
  h.payload_len = 4096;
  uint8_t buf[kFrameHeaderSize];
  EncodeFrameHeader(h, buf);
  FrameHeader d;
  ASSERT_TRUE(DecodeFrameHeader(buf, &d).ok());
  EXPECT_EQ(d.version, kWireVersion);
  EXPECT_EQ(d.opcode, Opcode::kMultiGet);
  EXPECT_EQ(d.flags, kFlagResponse);
  EXPECT_EQ(d.request_id, h.request_id);
  EXPECT_EQ(d.payload_len, h.payload_len);
}

TEST(WireTest, FrameHeaderIsLittleEndianOnTheWire) {
  FrameHeader h;
  h.opcode = Opcode::kPing;
  h.request_id = 0x0102030405060708ull;
  h.payload_len = 0x11223344;
  uint8_t buf[kFrameHeaderSize];
  EncodeFrameHeader(h, buf);
  // Magic spells "MLKV" byte-for-byte.
  EXPECT_EQ(std::memcmp(buf, "MLKV", 4), 0);
  // Low byte first.
  EXPECT_EQ(buf[8], 0x08);
  EXPECT_EQ(buf[15], 0x01);
  EXPECT_EQ(buf[16], 0x44);
  EXPECT_EQ(buf[19], 0x11);
}

TEST(WireTest, FrameHeaderRejectsBadMagic) {
  FrameHeader h;
  uint8_t buf[kFrameHeaderSize];
  EncodeFrameHeader(h, buf);
  buf[0] ^= 0xFF;
  FrameHeader d;
  EXPECT_TRUE(DecodeFrameHeader(buf, &d).IsCorruption());
}

TEST(WireTest, FrameHeaderRejectsVersionMismatchButKeepsRequestId) {
  FrameHeader h;
  h.version = kWireVersion + 7;
  h.request_id = 42;
  uint8_t buf[kFrameHeaderSize];
  EncodeFrameHeader(h, buf);
  FrameHeader d;
  const Status s = DecodeFrameHeader(buf, &d);
  EXPECT_TRUE(s.IsNotSupported());
  EXPECT_EQ(d.request_id, 42u);  // caller can still answer the peer
}

TEST(WireTest, FrameHeaderRejectsOversizedPayload) {
  FrameHeader h;
  h.payload_len = kMaxPayloadBytes + 1;
  uint8_t buf[kFrameHeaderSize];
  EncodeFrameHeader(h, buf);
  FrameHeader d;
  EXPECT_TRUE(DecodeFrameHeader(buf, &d).IsCorruption());
}

TEST(WireTest, PayloadPrimitivesRoundTrip) {
  PayloadWriter w;
  w.U8(0xAB);
  w.U16(0xCDEF);
  w.U32(0xDEADBEEF);
  w.U64(0xFEEDFACECAFEBEEFull);
  w.F32(-1.5f);
  w.Str("backend");
  w.StatusOf(Status::Busy("staleness"));
  PayloadReader r(w.bytes().data(), w.bytes().size());
  uint8_t a;
  uint16_t b;
  uint32_t c;
  uint64_t d;
  float f;
  std::string s;
  Status st;
  EXPECT_TRUE(r.U8(&a) && r.U16(&b) && r.U32(&c) && r.U64(&d) && r.F32(&f) &&
              r.Str(&s) && r.ReadStatus(&st));
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xCDEF);
  EXPECT_EQ(c, 0xDEADBEEFu);
  EXPECT_EQ(d, 0xFEEDFACECAFEBEEFull);
  EXPECT_FLOAT_EQ(f, -1.5f);
  EXPECT_EQ(s, "backend");
  EXPECT_TRUE(st.IsBusy());
  EXPECT_EQ(st.message(), "staleness");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.Finish("test").ok());
}

TEST(WireTest, ReaderRejectsTruncationEverywhere) {
  PayloadWriter w;
  MultiGetRequest req;
  req.keys = {1, 2, 3, 4, 5};
  EncodeMultiGetRequest(req, &w);
  const auto& full = w.bytes();
  // Every strict prefix must decode to Corruption, never crash or succeed.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    MultiGetRequest out;
    const Status s = DecodeMultiGetRequest(
        std::span<const uint8_t>(full.data(), cut), &out);
    EXPECT_FALSE(s.ok()) << "prefix of " << cut << " bytes decoded";
  }
  MultiGetRequest out;
  EXPECT_TRUE(DecodeMultiGetRequest(full, &out).ok());
  EXPECT_EQ(out.keys, req.keys);
}

TEST(WireTest, ReaderRejectsTrailingGarbage) {
  PayloadWriter w;
  MultiGetRequest req;
  req.keys = {9};
  EncodeMultiGetRequest(req, &w);
  auto bytes = w.bytes();
  bytes.push_back(0x77);
  MultiGetRequest out;
  EXPECT_TRUE(DecodeMultiGetRequest(bytes, &out).IsCorruption());
}

TEST(WireTest, KeyCountCannotExceedPayload) {
  // A hostile count prefix must be rejected before allocation.
  PayloadWriter w;
  w.U8(1);
  w.U8(0);
  w.U32(0x40000000);  // claims 1G keys in a tiny payload
  MultiGetRequest out;
  EXPECT_FALSE(DecodeMultiGetRequest(w.bytes(), &out).ok());
}

TEST(WireTest, WriteRequestValidatesRowBlock) {
  std::vector<Key> keys = {1, 2};
  std::vector<float> rows(2 * 4, 1.0f);
  PayloadWriter w;
  EncodeMultiWriteRequest(keys, rows.data(), 4, 0.5f, &w);
  MultiWriteRequest out;
  ASSERT_TRUE(DecodeMultiWriteRequest(w.bytes(), 4, &out).ok());
  EXPECT_FLOAT_EQ(out.lr, 0.5f);
  EXPECT_EQ(out.keys, keys);
  EXPECT_EQ(out.rows, rows);
  // The same bytes against a different dim must be rejected, not mis-split.
  EXPECT_FALSE(DecodeMultiWriteRequest(w.bytes(), 8, &out).ok());
}

TEST(WireTest, BatchResultRoundTripKeepsCountsAndError) {
  BatchResult r(4);
  r.Record(0, Status::OK());
  r.RecordInitialized(1);  // code kOk but counted missing
  r.Record(2, Status::Busy());
  r.Record(3, Status::IOError("disk on fire", 5));
  PayloadWriter w;
  EncodeBatchResult(r, &w);
  PayloadReader reader(w.bytes().data(), w.bytes().size());
  BatchResult d;
  ASSERT_TRUE(DecodeBatchResult(&reader, &d).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(d.codes, r.codes);
  EXPECT_EQ(d.found, 1u);
  EXPECT_EQ(d.missing, 1u);
  EXPECT_EQ(d.busy, 1u);
  EXPECT_EQ(d.failed, 1u);
  EXPECT_TRUE(d.first_error.IsIOError());
  EXPECT_NE(d.first_error.message().find("disk on fire"), std::string::npos);
  EXPECT_TRUE(d.StatusAt(2).IsBusy());
}

TEST(WireTest, RejectsOutOfRangeStatusCodes) {
  // Status codes come from an untrusted peer; an out-of-range byte must
  // fail decode, never reach Status::ToString()'s name table.
  {
    PayloadWriter w;
    w.U8(200);
    w.Str("bogus");
    PayloadReader r(w.bytes().data(), w.bytes().size());
    Status s;
    EXPECT_FALSE(r.ReadStatus(&s));
    EXPECT_FALSE(r.ok());
  }
  {
    PayloadWriter w;
    w.U32(1);   // one key
    w.U8(200);  // invalid per-key code
    w.U32(0);
    w.U32(0);
    w.U32(0);
    w.U32(1);
    w.StatusOf(Status::IOError("x"));
    PayloadReader r(w.bytes().data(), w.bytes().size());
    BatchResult out;
    EXPECT_TRUE(DecodeBatchResult(&r, &out).IsCorruption());
  }
}

TEST(WireTest, MultiGetResponsePacksOnlyServedRows) {
  constexpr uint32_t kDim = 3;
  BatchResult r(3);
  r.Record(0, Status::OK());
  r.Record(1, Status::NotFound());
  r.Record(2, Status::OK());
  const float rows[9] = {1, 2, 3, 99, 99, 99, 7, 8, 9};
  PayloadWriter w;
  EncodeMultiGetResponse(r, rows, kDim, &w);
  // Payload holds exactly 2 rows, not 3.
  PayloadReader probe(w.bytes().data(), w.bytes().size());
  BatchResult header_only;
  ASSERT_TRUE(DecodeBatchResult(&probe, &header_only).ok());
  EXPECT_EQ(probe.remaining(), 2 * kDim * sizeof(float));

  float out[9] = {-5, -5, -5, -5, -5, -5, -5, -5, -5};
  BatchResult d;
  PayloadReader reader(w.bytes().data(), w.bytes().size());
  ASSERT_TRUE(DecodeMultiGetResponse(&reader, 3, kDim, &d, out).ok());
  EXPECT_FLOAT_EQ(out[0], 1);
  EXPECT_FLOAT_EQ(out[3], -5);  // missing row untouched
  EXPECT_FLOAT_EQ(out[6], 7);
}

TEST(WireTest, GatheredRowRunsByteIdenticalToCopyEncode) {
  // The server's zero-copy send path frames [EncodeBatchResult bytes]
  // followed by the CollectServedRowRuns spans as iovecs. That
  // concatenation must be byte-identical to the copy path
  // (EncodeMultiGetResponse) for every hole pattern, or old and new
  // clients would disagree about the same response.
  if (!kRawFloatRowsMatchWire) GTEST_SKIP() << "big-endian host";
  constexpr uint32_t kDim = 3;
  const float rows[5 * kDim] = {1,  2,  3,  4,  5,  6,  7, 8,
                                9, 10, 11, 12, 13, 14, 15};
  // Hole patterns: leading, trailing, interior holes; all served; none.
  const Status ok = Status::OK();
  const Status nf = Status::NotFound();
  const Status busy = Status::Busy();
  const std::vector<std::vector<Status>> patterns = {
      {nf, ok, ok, nf, ok},
      {ok, busy, ok, ok, nf},
      {ok, ok, ok, ok, ok},
      {nf, busy, nf, nf, nf},
  };
  for (const auto& statuses : patterns) {
    BatchResult r(statuses.size());
    for (size_t i = 0; i < statuses.size(); ++i) {
      r.Record(i, statuses[i]);
    }
    PayloadWriter copy_path;
    EncodeMultiGetResponse(r, rows, kDim, &copy_path);

    PayloadWriter body;
    EncodeBatchResult(r, &body);
    std::vector<std::span<const uint8_t>> runs;
    CollectServedRowRuns(r.codes, rows, kDim, &runs);
    std::vector<uint8_t> gathered(body.bytes().begin(), body.bytes().end());
    for (const auto& run : runs) {
      gathered.insert(gathered.end(), run.begin(), run.end());
    }
    ASSERT_EQ(gathered.size(), copy_path.bytes().size());
    EXPECT_EQ(std::memcmp(gathered.data(), copy_path.bytes().data(),
                          gathered.size()),
              0);
  }
}

TEST(WireTest, WriteHeaderPlusRawRowsByteIdenticalToCopyEncode) {
  // The client's zero-copy write path frames [EncodeMultiWriteRequestHeader
  // bytes] followed by the caller's raw float block as a gathered second
  // piece. That concatenation must be byte-identical to the copy path
  // (EncodeMultiWriteRequest), or servers would decode the two encodings
  // of the same request differently.
  if (!kRawFloatRowsMatchWire) GTEST_SKIP() << "big-endian host";
  constexpr uint32_t kDim = 3;
  std::vector<Key> keys = {42, 7, 19};
  std::vector<float> rows(keys.size() * kDim);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = static_cast<float>(i) * 0.25f - 1.0f;
  }
  PayloadWriter copy_path;
  EncodeMultiWriteRequest(keys, rows.data(), kDim, 0.125f, &copy_path);

  PayloadWriter header;
  EncodeMultiWriteRequestHeader(keys, 0.125f, &header);
  std::vector<uint8_t> gathered(header.bytes().begin(), header.bytes().end());
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(rows.data());
  gathered.insert(gathered.end(), raw, raw + rows.size() * sizeof(float));
  ASSERT_EQ(gathered.size(), copy_path.bytes().size());
  EXPECT_EQ(std::memcmp(gathered.data(), copy_path.bytes().data(),
                        gathered.size()),
            0);

  // And the gathered bytes decode back to the original request.
  MultiWriteRequest out;
  ASSERT_TRUE(DecodeMultiWriteRequest(gathered, kDim, &out).ok());
  EXPECT_FLOAT_EQ(out.lr, 0.125f);
  EXPECT_EQ(out.keys, keys);
  EXPECT_EQ(out.rows, rows);
}

TEST(WireTest, CollectServedRowRunsCoalescesAdjacentRows) {
  if (!kRawFloatRowsMatchWire) GTEST_SKIP() << "big-endian host";
  constexpr uint32_t kDim = 2;
  const float rows[4 * kDim] = {0, 1, 2, 3, 4, 5, 6, 7};
  BatchResult r(4);
  r.Record(0, Status::OK());
  r.Record(1, Status::OK());
  r.Record(2, Status::NotFound());
  r.Record(3, Status::OK());
  std::vector<std::span<const uint8_t>> runs;
  CollectServedRowRuns(r.codes, rows, kDim, &runs);
  // Rows 0-1 coalesce into one span; row 3 is its own.
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].size(), 2 * kDim * sizeof(float));
  EXPECT_EQ(runs[1].size(), kDim * sizeof(float));
  EXPECT_EQ(runs[0].data(), reinterpret_cast<const uint8_t*>(rows));
}

TEST(WireTest, StatsSnapshotCarriesKernelTier) {
  StatsSnapshot s;
  s.requests = 42;
  s.kernel_tier = 1;  // avx2+fma
  PayloadWriter w;
  EncodeStatsSnapshot(s, &w);
  PayloadReader r(w.bytes().data(), w.bytes().size());
  StatsSnapshot d;
  ASSERT_TRUE(DecodeStatsSnapshot(&r, &d).ok());
  EXPECT_EQ(d.requests, 42u);
  EXPECT_EQ(d.kernel_tier, 1u);
}

TEST(WireTest, HandshakeInfoRoundTrip) {
  HandshakeInfo h{16, 3, "MLKV"};
  PayloadWriter w;
  EncodeHandshakeInfo(h, &w);
  PayloadReader r(w.bytes().data(), w.bytes().size());
  HandshakeInfo d;
  ASSERT_TRUE(DecodeHandshakeInfo(&r, &d).ok());
  EXPECT_EQ(d.dim, 16u);
  EXPECT_EQ(d.shard_bits, 3u);
  EXPECT_EQ(d.backend_name, "MLKV");
}

TEST(WireTest, ParseEndpointListForms) {
  std::vector<std::string> out;
  ASSERT_TRUE(ParseEndpointList("h1:7700,h2:7701", &out).ok());
  EXPECT_EQ(out, (std::vector<std::string>{"h1:7700", "h2:7701"}));

  // Whitespace around entries is trimmed; entries are normalized through
  // ParseHostPort (bare ":port" gets the loopback host).
  out.clear();
  ASSERT_TRUE(ParseEndpointList("  h1:7700 ,\th2:7701 , :7702", &out).ok());
  EXPECT_EQ(out, (std::vector<std::string>{"h1:7700", "h2:7701",
                                           "127.0.0.1:7702"}));

  out.clear();
  EXPECT_TRUE(ParseEndpointList("", &out).IsInvalidArgument());
  EXPECT_TRUE(ParseEndpointList("h1:7700,,h2:7701", &out).IsInvalidArgument());
  EXPECT_TRUE(ParseEndpointList("h1:7700,", &out).IsInvalidArgument());
  EXPECT_TRUE(ParseEndpointList("h1:7700, h2", &out).IsInvalidArgument());
  EXPECT_TRUE(ParseEndpointList("h1:99999", &out).IsInvalidArgument());
  EXPECT_TRUE(ParseEndpointList("h1:0", &out).IsInvalidArgument());
}

TEST(WireTest, ReplicationPayloadsRoundTrip) {
  SubscribeResponse sub;
  sub.shard_durables = {64, 0, 4096};
  PayloadWriter w1;
  EncodeSubscribeResponse(sub, &w1);
  PayloadReader r1(w1.bytes().data(), w1.bytes().size());
  SubscribeResponse dsub;
  ASSERT_TRUE(DecodeSubscribeResponse(&r1, &dsub).ok());
  EXPECT_EQ(dsub.shard_durables, sub.shard_durables);

  ReplicateRequest req;
  req.shard = 2;
  req.from = 12345;
  req.max_records = 512;
  req.max_bytes = 1 << 20;
  PayloadWriter w2;
  EncodeReplicateRequest(req, &w2);
  ReplicateRequest dreq;
  ASSERT_TRUE(DecodeReplicateRequest(w2.bytes(), &dreq).ok());
  EXPECT_EQ(dreq.shard, req.shard);
  EXPECT_EQ(dreq.from, req.from);
  EXPECT_EQ(dreq.max_records, req.max_records);
  EXPECT_EQ(dreq.max_bytes, req.max_bytes);

  ReplicateResponse resp;
  resp.next_from = 2048;
  resp.durable = 4096;
  UpdateEntry a;
  a.address = 64;
  a.key = 7;
  a.generation = 3;
  a.staleness = 1;
  a.tombstone = false;
  a.value = {'a', 'b', 'c', 'd'};
  UpdateEntry b;
  b.address = 128;
  b.key = 9;
  b.tombstone = true;  // tombstones ship with an empty value
  resp.entries = {a, b};
  PayloadWriter w3;
  EncodeReplicateResponse(resp, &w3);
  PayloadReader r3(w3.bytes().data(), w3.bytes().size());
  ReplicateResponse dresp;
  ASSERT_TRUE(DecodeReplicateResponse(&r3, &dresp).ok());
  EXPECT_EQ(dresp.next_from, resp.next_from);
  EXPECT_EQ(dresp.durable, resp.durable);
  ASSERT_EQ(dresp.entries.size(), 2u);
  EXPECT_EQ(dresp.entries[0].address, a.address);
  EXPECT_EQ(dresp.entries[0].key, a.key);
  EXPECT_EQ(dresp.entries[0].generation, a.generation);
  EXPECT_EQ(dresp.entries[0].staleness, a.staleness);
  EXPECT_FALSE(dresp.entries[0].tombstone);
  EXPECT_EQ(dresp.entries[0].value, a.value);
  EXPECT_TRUE(dresp.entries[1].tombstone);
  EXPECT_TRUE(dresp.entries[1].value.empty());

  // Truncation anywhere must be rejected, never read out of bounds.
  for (size_t cut = 0; cut + 1 < w3.bytes().size(); cut += 5) {
    PayloadReader r(w3.bytes().data(), cut);
    ReplicateResponse d;
    EXPECT_FALSE(DecodeReplicateResponse(&r, &d).ok()) << "cut " << cut;
  }
}

TEST(WireTest, ParseHostPortForms) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseHostPort("127.0.0.1:7700", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7700);
  ASSERT_TRUE(ParseHostPort(":8080", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_FALSE(ParseHostPort("nocolon", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("h:99999", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("h:0", &host, &port).ok());
  EXPECT_TRUE(ParseHostPort("h:0", &host, &port, true).ok());
}

// --- server + client over loopback ---------------------------------------

std::unique_ptr<KvBackend> MakeInMemory(uint32_t dim = 8) {
  BackendConfig cfg;
  cfg.dim = dim;
  cfg.dir = "";  // in-memory backend: no files
  std::unique_ptr<KvBackend> b;
  // InMemory ignores dir contents but the factory creates the dir; give a
  // scratch path under /tmp via the temp-dir-free direct kind.
  cfg.dir = "/tmp/mlkv-net-test-inmem";
  if (!MakeBackend(BackendKind::kInMemory, cfg, &b).ok()) return nullptr;
  return b;
}

class LoopbackServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    KvServerOptions opts;
    opts.num_workers = 4;
    server_ = std::make_unique<KvServer>(MakeInMemory(), opts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  std::unique_ptr<KvServer> server_;
};

TEST_F(LoopbackServerTest, RemoteBackendHandshakesAndRoundTrips) {
  RemoteBackendOptions o;
  o.addr = server_->addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(RemoteBackend::Connect(o, &remote).ok());
  EXPECT_EQ(remote->dim(), 8u);
  EXPECT_EQ(remote->name(), "Remote(InMemory)");

  std::vector<Key> keys = {10, 20, 30};
  std::vector<float> values(3 * 8);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i) * 0.25f;
  }
  EXPECT_TRUE(remote->MultiPut(keys, values.data()).AllOk());
  std::vector<float> out(3 * 8, -1.0f);
  const BatchResult got = remote->MultiGet(keys, out.data());
  EXPECT_TRUE(got.AllOk());
  EXPECT_EQ(got.found, 3u);
  EXPECT_EQ(out, values);
}

TEST_F(LoopbackServerTest, PingStatsAndOpCounters) {
  RemoteBackendOptions o;
  o.addr = server_->addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(RemoteBackend::Connect(o, &remote).ok());
  auto* rb = static_cast<RemoteBackend*>(remote.get());
  ASSERT_TRUE(rb->Ping().ok());
  std::vector<Key> keys = {1, 2};
  std::vector<float> buf(2 * 8);
  remote->MultiGet(keys, buf.data());
  remote->MultiGet(keys, buf.data());
  remote->MultiPut(keys, buf.data());
  StatsSnapshot s;
  ASSERT_TRUE(rb->FetchStats(&s).ok());
  EXPECT_EQ(s.op_counts[static_cast<size_t>(Opcode::kMultiGet)], 2u);
  EXPECT_EQ(s.op_counts[static_cast<size_t>(Opcode::kMultiPut)], 1u);
  EXPECT_EQ(s.op_counts[static_cast<size_t>(Opcode::kPing)], 1u);
  EXPECT_GE(s.op_counts[static_cast<size_t>(Opcode::kHandshake)], 1u);
  EXPECT_GE(s.requests, 5u);
  // The in-process view agrees with the wire view.
  const StatsSnapshot local = server_->stats();
  EXPECT_GE(local.requests, s.requests);
  EXPECT_GE(server_->request_latency().count(), s.requests);
}

TEST_F(LoopbackServerTest, LookaheadTravelsTheWire) {
  RemoteBackendOptions o;
  o.addr = server_->addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(RemoteBackend::Connect(o, &remote).ok());
  std::vector<Key> keys = {5, 6, 7};
  EXPECT_TRUE(remote->Lookahead(keys).ok());
  const StatsSnapshot s = server_->stats();
  EXPECT_EQ(s.op_counts[static_cast<size_t>(Opcode::kLookahead)], 1u);
}

TEST_F(LoopbackServerTest, VersionMismatchHandshakeFails) {
  Socket raw;
  ASSERT_TRUE(Socket::Connect("127.0.0.1", server_->port(), &raw).ok());
  FrameHeader h;
  h.version = kWireVersion + 1;
  h.opcode = Opcode::kHandshake;
  h.request_id = 77;
  uint8_t buf[kFrameHeaderSize];
  EncodeFrameHeader(h, buf);
  ASSERT_TRUE(raw.SendAll(buf, sizeof(buf)).ok());
  // The server answers with a decodable NotSupported error...
  FrameHeader resp;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(RecvFrame(&raw, &resp, &payload).ok());
  EXPECT_EQ(resp.request_id, 77u);
  EXPECT_NE(resp.flags & kFlagResponse, 0);
  PayloadReader r(payload.data(), payload.size());
  Status transport;
  ASSERT_TRUE(r.ReadStatus(&transport));
  EXPECT_TRUE(transport.IsNotSupported());
  EXPECT_NE(transport.message().find("version"), std::string::npos);
  // ...then hangs up.
  uint8_t byte;
  EXPECT_TRUE(raw.RecvAll(&byte, 1, /*eof_ok=*/true).IsAborted());
}

TEST_F(LoopbackServerTest, CorruptMagicDropsConnectionServerSurvives) {
  {
    Socket raw;
    ASSERT_TRUE(Socket::Connect("127.0.0.1", server_->port(), &raw).ok());
    uint8_t garbage[kFrameHeaderSize];
    std::memset(garbage, 0x5A, sizeof(garbage));
    ASSERT_TRUE(raw.SendAll(garbage, sizeof(garbage)).ok());
    uint8_t byte;
    EXPECT_FALSE(raw.RecvAll(&byte, 1, /*eof_ok=*/true).ok());
  }
  // A frame announcing more payload than it delivers must not wedge the
  // worker either.
  {
    Socket raw;
    ASSERT_TRUE(Socket::Connect("127.0.0.1", server_->port(), &raw).ok());
    FrameHeader h;
    h.opcode = Opcode::kPing;
    h.payload_len = 100;
    uint8_t buf[kFrameHeaderSize];
    EncodeFrameHeader(h, buf);
    ASSERT_TRUE(raw.SendAll(buf, sizeof(buf)).ok());
    // close with the payload never sent
  }
  // The server still serves fresh connections.
  RemoteBackendOptions o;
  o.addr = server_->addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(RemoteBackend::Connect(o, &remote).ok());
  ASSERT_TRUE(static_cast<RemoteBackend*>(remote.get())->Ping().ok());
  EXPECT_GE(server_->stats().transport_errors, 1u);
}

TEST_F(LoopbackServerTest, UnknownOpcodeGetsErrorButKeepsConnection) {
  Socket raw;
  ASSERT_TRUE(Socket::Connect("127.0.0.1", server_->port(), &raw).ok());
  FrameHeader h;
  h.opcode = static_cast<Opcode>(99);
  h.request_id = 5;
  uint8_t buf[kFrameHeaderSize];
  EncodeFrameHeader(h, buf);
  ASSERT_TRUE(raw.SendAll(buf, sizeof(buf)).ok());
  FrameHeader resp;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(RecvFrame(&raw, &resp, &payload).ok());
  PayloadReader r(payload.data(), payload.size());
  Status transport;
  ASSERT_TRUE(r.ReadStatus(&transport));
  EXPECT_TRUE(transport.IsNotSupported());
  // Frame boundaries were intact, so the connection still works.
  FrameHeader ping;
  ping.opcode = Opcode::kPing;
  ping.request_id = 6;
  EncodeFrameHeader(ping, buf);
  ASSERT_TRUE(raw.SendAll(buf, sizeof(buf)).ok());
  ASSERT_TRUE(RecvFrame(&raw, &resp, &payload).ok());
  EXPECT_EQ(resp.request_id, 6u);
}

TEST_F(LoopbackServerTest, ParallelPooledClients) {
  RemoteBackendOptions o;
  o.addr = server_->addr();
  o.pool_size = 4;
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(RemoteBackend::Connect(o, &remote).ok());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<Key> keys(16);
      std::vector<float> values(16 * 8), out(16 * 8);
      for (int round = 0; round < 50; ++round) {
        for (size_t i = 0; i < keys.size(); ++i) {
          keys[i] = static_cast<Key>(t) * 100000 + round * 16 + i;
          for (int d = 0; d < 8; ++d) {
            values[i * 8 + d] = static_cast<float>(keys[i] + d);
          }
        }
        if (!remote->MultiPut(keys, values.data()).AllOk() ||
            !remote->MultiGet(keys, out.data()).AllOk() || out != values) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(LoopbackServerTest, OversizedBatchesChunkAcrossRpcs) {
  RemoteBackendOptions o;
  o.addr = server_->addr();
  o.max_keys_per_rpc = 7;  // force chunk stitching on modest batches
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(RemoteBackend::Connect(o, &remote).ok());

  constexpr size_t kN = 100;
  std::vector<Key> keys(kN);
  for (size_t i = 0; i < kN; ++i) keys[i] = 500 + i;
  keys[3] = keys[95];   // duplicates spanning chunk boundaries
  keys[10] = keys[60];
  std::vector<float> values(kN * 8);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i) * 0.1f;
  }
  // Last-occurrence-wins must survive chunking.
  const BatchResult put = remote->MultiPut(keys, values.data());
  EXPECT_TRUE(put.AllOk());
  ASSERT_EQ(put.size(), kN);
  std::vector<float> out(kN * 8);
  const BatchResult got = remote->MultiGet(keys, out.data());
  EXPECT_TRUE(got.AllOk());
  EXPECT_EQ(got.found, kN);
  for (int d = 0; d < 8; ++d) {
    EXPECT_FLOAT_EQ(out[3 * 8 + d], values[95 * 8 + d]);  // dup reads last
    EXPECT_FLOAT_EQ(out[10 * 8 + d], values[60 * 8 + d]);
  }
  // Mixed found/missing codes land at caller positions across chunks.
  std::vector<Key> probe(kN);
  for (size_t i = 0; i < kN; ++i) {
    probe[i] = i % 2 == 0 ? keys[i] : 900000 + i;
  }
  MultiGetOptions no_init;
  no_init.init_missing = false;
  const BatchResult mixed = remote->MultiGet(probe, out.data(), no_init);
  ASSERT_EQ(mixed.size(), kN);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(mixed.codes[i], i % 2 == 0 ? Status::Code::kOk
                                         : Status::Code::kNotFound)
        << "key " << i;
  }
  EXPECT_EQ(mixed.found + mixed.missing, kN);
  // Served rows land intact around the holes — the server gathers them
  // straight from its backend buffer as iovecs, so any run-boundary bug
  // would show up as shifted row data here.
  for (int d = 0; d < 8; ++d) {
    EXPECT_FLOAT_EQ(out[0 * 8 + d], values[0 * 8 + d]);
    EXPECT_FLOAT_EQ(out[2 * 8 + d], values[2 * 8 + d]);
    EXPECT_FLOAT_EQ(out[98 * 8 + d], values[98 * 8 + d]);
  }
  // The server really saw multiple MultiGet frames per call.
  const StatsSnapshot s = server_->stats();
  EXPECT_GE(s.op_counts[static_cast<size_t>(Opcode::kMultiGet)],
            2 * ((kN + 6) / 7));
}

TEST_F(LoopbackServerTest, ServerRejectsDimAmplifiedOversizeMultiGet) {
  // A client that skips chunking (hostile, or max_keys_per_rpc overridden)
  // can fit a key list in one frame whose dim-amplified response would
  // not fit. The server must refuse before doing any backend work, with a
  // decodable error on an intact stream.
  RemoteBackendOptions o;
  o.addr = server_->addr();
  o.max_keys_per_rpc = 1u << 26;  // defeat the client-side chunking
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(RemoteBackend::Connect(o, &remote).ok());
  const size_t n = kMaxPayloadBytes / (8 * 4 + 1) + 1024;  // over resp cap
  std::vector<Key> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = i;
  std::vector<float> out(n * 8);
  MultiGetOptions no_init;
  no_init.init_missing = false;  // reject must come before any execution
  const BatchResult r = remote->MultiGet(keys, out.data(), no_init);
  EXPECT_EQ(r.failed, n);
  EXPECT_TRUE(r.first_error.IsInvalidArgument());
  // Payload-level error: frame boundaries intact, connection reusable.
  std::vector<Key> one = {1};
  EXPECT_TRUE(remote->MultiGet(one, out.data()).AllOk());
}

TEST_F(LoopbackServerTest, MoreConnectionsThanWorkersRoundRobin) {
  // 4 workers (fixture) but 6 single-connection clients issuing RPCs in
  // lockstep: quiet connections must yield their slots, so every client
  // makes progress instead of the 5th+ hanging forever.
  constexpr int kClients = 6;
  std::vector<std::unique_ptr<KvBackend>> clients(kClients);
  for (int c = 0; c < kClients; ++c) {
    RemoteBackendOptions o;
    o.addr = server_->addr();
    o.pool_size = 1;
    ASSERT_TRUE(RemoteBackend::Connect(o, &clients[c]).ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<Key> keys = {static_cast<Key>(c) * 1000};
      std::vector<float> buf(8);
      for (int round = 0; round < 20; ++round) {
        if (!clients[c]->MultiGet(keys, buf.data()).AllOk()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(LoopbackServerTest, StopUnblocksIdleConnectionsAndRejectsNew) {
  RemoteBackendOptions o;
  o.addr = server_->addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(RemoteBackend::Connect(o, &remote).ok());
  ASSERT_TRUE(static_cast<RemoteBackend*>(remote.get())->Ping().ok());
  // One idle pooled connection is parked in a worker's RecvFrame; Stop
  // must return promptly anyway.
  server_->Stop();
  EXPECT_FALSE(server_->running());
  // The client's next RPC fails cleanly instead of hanging.
  std::vector<Key> keys = {1};
  std::vector<float> buf(8);
  const BatchResult r = remote->MultiGet(keys, buf.data());
  EXPECT_EQ(r.failed, 1u);
}

// Backend wrapper whose MultiGet blocks until released — makes the
// "Stop() drains in-flight requests" guarantee testable deterministically.
class GatedBackend : public KvBackend {
 public:
  explicit GatedBackend(std::unique_ptr<KvBackend> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  uint32_t dim() const override { return inner_->dim(); }

  BatchResult MultiGet(std::span<const Key> keys, float* out,
                       const MultiGetOptions& options) override {
    {
      std::unique_lock<std::mutex> lk(mu_);
      entered_ = true;
      entered_cv_.notify_all();
      release_cv_.wait(lk, [this] { return released_; });
    }
    return inner_->MultiGet(keys, out, options);
  }
  BatchResult MultiPut(std::span<const Key> keys,
                       const float* values) override {
    return inner_->MultiPut(keys, values);
  }

  void WaitEntered() {
    std::unique_lock<std::mutex> lk(mu_);
    entered_cv_.wait(lk, [this] { return entered_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lk(mu_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  std::unique_ptr<KvBackend> inner_;
  std::mutex mu_;
  std::condition_variable entered_cv_, release_cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(KvServerStopTest, StopDrainsInFlightRequest) {
  auto gated = std::make_unique<GatedBackend>(MakeInMemory());
  GatedBackend* gate = gated.get();
  KvServerOptions opts;
  opts.num_workers = 2;
  KvServer server(std::move(gated), opts);
  ASSERT_TRUE(server.Start().ok());

  // Seed a value through the ungated path.
  RemoteBackendOptions o;
  o.addr = server.addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(RemoteBackend::Connect(o, &remote).ok());
  std::vector<Key> keys = {7};
  std::vector<float> v(8, 3.5f);
  ASSERT_TRUE(remote->MultiPut(keys, v.data()).AllOk());

  // In-flight MultiGet parks inside the backend...
  BatchResult got;
  std::vector<float> out(8, 0.0f);
  std::thread client([&] { got = remote->MultiGet(keys, out.data()); });
  gate->WaitEntered();

  // ...Stop begins while the request is mid-execution...
  std::thread stopper([&] { server.Stop(); });
  gate->Release();

  // ...and both sides finish: the client gets its full response, Stop
  // returns once the drain completes.
  client.join();
  stopper.join();
  EXPECT_TRUE(got.AllOk());
  EXPECT_EQ(out, v);
  EXPECT_FALSE(server.running());
}

TEST(KvServerOffloadTest, OffloadFreesTheWorkerForOtherConnections) {
  // One worker, but storage requests execute on a request pool: while
  // client A's MultiGet is parked inside the backend, the lone worker must
  // still serve client B — impossible if the request ran inline.
  auto gated = std::make_unique<GatedBackend>(MakeInMemory());
  GatedBackend* gate = gated.get();
  KvServerOptions opts;
  opts.num_workers = 1;
  opts.request_threads = 2;
  KvServer server(std::move(gated), opts);
  ASSERT_TRUE(server.Start().ok());

  RemoteBackendOptions o;
  o.addr = server.addr();
  std::unique_ptr<KvBackend> a, b;
  ASSERT_TRUE(RemoteBackend::Connect(o, &a).ok());
  ASSERT_TRUE(RemoteBackend::Connect(o, &b).ok());

  std::vector<Key> keys = {5};
  std::vector<float> v(8, 2.25f);
  ASSERT_TRUE(b->MultiPut(keys, v.data()).AllOk());

  BatchResult got;
  std::vector<float> out(8, 0.0f);
  std::thread blocked([&] { got = a->MultiGet(keys, out.data()); });
  gate->WaitEntered();
  // A is parked in the backend on the offload pool; B's RPCs — another
  // storage op and a ping — go through the (single) freed worker.
  std::vector<float> v2(8, 9.75f);
  EXPECT_TRUE(b->MultiPut({keys.data(), 1}, v2.data()).AllOk());
  EXPECT_TRUE(static_cast<RemoteBackend*>(b.get())->Ping().ok());
  gate->Release();
  blocked.join();
  EXPECT_TRUE(got.AllOk());
  // A's read linearized either before or after B's second put.
  EXPECT_TRUE(out == v || out == v2);
  // A's connection was requeued after the offloaded response: it serves
  // the next request normally.
  EXPECT_TRUE(a->MultiGet(keys, out.data()).AllOk());
  EXPECT_EQ(out, v2);
  server.Stop();
}

TEST(KvServerOffloadTest, StopDrainsOffloadedInFlightRequest) {
  auto gated = std::make_unique<GatedBackend>(MakeInMemory());
  GatedBackend* gate = gated.get();
  KvServerOptions opts;
  opts.num_workers = 1;
  opts.request_threads = 1;
  KvServer server(std::move(gated), opts);
  ASSERT_TRUE(server.Start().ok());

  RemoteBackendOptions o;
  o.addr = server.addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(RemoteBackend::Connect(o, &remote).ok());
  std::vector<Key> keys = {7};
  std::vector<float> v(8, 3.5f);
  ASSERT_TRUE(remote->MultiPut(keys, v.data()).AllOk());

  BatchResult got;
  std::vector<float> out(8, 0.0f);
  std::thread client([&] { got = remote->MultiGet(keys, out.data()); });
  gate->WaitEntered();
  std::thread stopper([&] { server.Stop(); });
  gate->Release();
  client.join();
  stopper.join();
  // The offloaded request finished and answered before Stop returned.
  EXPECT_TRUE(got.AllOk());
  EXPECT_EQ(out, v);
  EXPECT_FALSE(server.running());
}

TEST(KvServerIoStatsTest, ColdReadCountersTravelTheWire) {
  // A FASTER backend with a tiny buffer behind a server: cold remote
  // MultiGets must surface disk and pending-pipeline counters through the
  // kStats opcode — the remote operator's view of I/O behavior.
  TempDir dir;
  BackendConfig cfg;
  cfg.dir = dir.File("b");
  cfg.dim = 8;
  cfg.buffer_bytes = 1u << 16;
  cfg.index_slots = 4096;
  cfg.io_mode = IoMode::kAsync;
  cfg.io_threads = 2;
  std::unique_ptr<KvBackend> backend;
  ASSERT_TRUE(MakeBackend(BackendKind::kFaster, cfg, &backend).ok());
  KvServer server(std::move(backend));
  ASSERT_TRUE(server.Start().ok());

  RemoteBackendOptions o;
  o.addr = server.addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(RemoteBackend::Connect(o, &remote).ok());
  constexpr size_t kN = 2000;
  std::vector<Key> keys(kN);
  std::vector<float> rows(kN * 8);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = i;
    for (int d = 0; d < 8; ++d) rows[i * 8 + d] = static_cast<float>(i);
  }
  ASSERT_TRUE(remote->MultiPut(keys, rows.data()).AllOk());
  std::vector<float> out(kN * 8, 0.0f);
  ASSERT_TRUE(remote->MultiGet(keys, out.data()).AllOk());
  EXPECT_EQ(out, rows);

  StatsSnapshot s;
  ASSERT_TRUE(
      static_cast<RemoteBackend*>(remote.get())->FetchStats(&s).ok());
  EXPECT_GT(s.disk_record_reads, 0u);
  EXPECT_GT(s.pages_flushed, 0u);
  EXPECT_GT(s.async_reads_submitted, 0u);
  EXPECT_EQ(s.async_reads_submitted, s.async_reads_completed);
  server.Stop();
}

TEST(KvServerStopTest, StopNotWedgedByPeerThatStopsReading) {
  // A worker mid-send to a client that never reads blocks once the TCP
  // buffers fill; SHUT_RD can't unblock a send, so the send timeout must
  // bound the drain or Stop() would join() forever.
  KvServerOptions opts;
  opts.num_workers = 1;
  opts.send_timeout_ms = 300;
  KvServer server(MakeInMemory(), opts);
  ASSERT_TRUE(server.Start().ok());

  Socket raw;
  ASSERT_TRUE(Socket::Connect("127.0.0.1", server.port(), &raw).ok());
  // ~1.5M fresh keys at dim 8 → ~49 MiB of initialized rows back: well
  // past any loopback socket buffering, and under the 64 MiB frame cap.
  constexpr size_t kN = 1500000;
  std::vector<Key> keys(kN);
  for (size_t i = 0; i < kN; ++i) keys[i] = i;
  PayloadWriter w;
  EncodeMultiGetRequest(keys, /*init_missing=*/true, /*untracked=*/true, &w);
  ASSERT_TRUE(SendFrame(&raw, Opcode::kMultiGet, 0, 1, w.bytes()).ok());
  // Never read the response; give the worker time to start sending.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const uint64_t start = NowMicros();
  server.Stop();
  // Bounded by the send timeout (+ the backend work), not forever. The
  // bound is generous for sanitizer builds.
  EXPECT_LT(NowMicros() - start, 60ull * 1000 * 1000);
}

TEST(KvServerStopTest, StopIsIdempotentAndRestartable) {
  KvServerOptions opts;
  opts.num_workers = 1;
  KvServer server(MakeInMemory(), opts);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t first_port = server.port();
  ASSERT_NE(first_port, 0);
  server.Stop();
  server.Stop();  // no-op
  // A stopped server can be started again (fresh ephemeral port is fine).
  ASSERT_TRUE(server.Start().ok());
  RemoteBackendOptions o;
  o.addr = server.addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(RemoteBackend::Connect(o, &remote).ok());
  ASSERT_TRUE(static_cast<RemoteBackend*>(remote.get())->Ping().ok());
  server.Stop();
}

TEST(KvServerRestartTest, StalePooledSocketRetriesOnFreshConnection) {
  // A pooled client socket can outlive its server (restart / failover).
  // KvServer always responds before closing, so a clean close where the
  // response should be means the request never executed — the client must
  // retry once on a fresh socket instead of folding the batch to failures.
  KvServerOptions opts;
  opts.num_workers = 2;
  auto first = std::make_unique<KvServer>(MakeInMemory(), opts);
  ASSERT_TRUE(first->Start().ok());
  const uint16_t port = first->port();

  RemoteBackendOptions o;
  o.addr = first->addr();
  std::unique_ptr<RemoteBackend> remote;
  ASSERT_TRUE(RemoteBackend::Connect(o, &remote).ok());
  ASSERT_TRUE(remote->Ping().ok());  // pools a now-doomed idle socket

  first->Stop();
  first.reset();
  // Same port, new server process-equivalent.
  opts.port = port;
  KvServer second(MakeInMemory(), opts);
  ASSERT_TRUE(second.Start().ok());

  std::vector<Key> keys = {1, 2, 3};
  std::vector<float> values(3 * 8, 1.25f);
  const BatchResult put = remote->MultiPut(keys, values.data());
  EXPECT_TRUE(put.AllOk()) << put.status().ToString();
  std::vector<float> out(3 * 8, -1.0f);
  EXPECT_TRUE(remote->MultiGet(keys, out.data(), MultiGetOptions{}).AllOk());
  EXPECT_EQ(out, values);
  EXPECT_GE(remote->io_stats().remote_retries, 1u)
      << "the stale pooled socket should have been retried, not failed";

  remote.reset();
  second.Stop();
}

}  // namespace
}  // namespace net
}  // namespace mlkv
