// End-to-end smoke test for the paper §III-A API surface: Mlkv::Open +
// OpenTable + GetOrInit/Put/Lookahead round-trips under each consistency
// preset (BSP, SSP, ASP — §III-C1).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/temp_dir.h"
#include "mlkv/mlkv.h"

namespace mlkv {
namespace {

class MlkvSmokeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MlkvSmokeTest, OpenPutGetLookaheadRoundTrip) {
  const uint32_t staleness_bound = GetParam();
  constexpr uint32_t kDim = 8;
  constexpr size_t kKeys = 64;

  TempDir dir("mlkv_smoke");
  MlkvOptions options;
  options.dir = dir.path();

  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(options, &db).ok());

  EmbeddingTable* table = nullptr;
  ASSERT_TRUE(db->OpenTable("smoke_emb", kDim, staleness_bound, &table).ok());
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->dim(), kDim);
  EXPECT_EQ(table->staleness_bound(), staleness_bound);

  std::vector<Key> keys(kKeys);
  for (size_t i = 0; i < kKeys; ++i) keys[i] = 1000 + i;

  // The staleness protocol pairs every Get with a Put per key (§III-C1):
  // under BSP (bound 0) a second unbalanced Get would block. Each "training
  // iteration" below therefore reads once and writes once, which is valid
  // under all three presets.

  // Iteration 1: GetOrInit bootstraps missing keys; write the init back.
  std::vector<float> first(kKeys * kDim), second(kKeys * kDim);
  ASSERT_TRUE(table->GetOrInit(keys, first.data()).ok());
  ASSERT_TRUE(table->Put(keys, first.data()).ok());

  // Iteration 2: a second GetOrInit must observe the materialized values.
  ASSERT_TRUE(table->GetOrInit(keys, second.data()).ok());
  EXPECT_EQ(first, second);

  std::vector<float> values(kKeys * kDim);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i) * 0.25f - 3.0f;
  }
  ASSERT_TRUE(table->Put(keys, values.data()).ok());

  // Iteration 3: Put then Get round-trips exact values.
  std::vector<float> got(kKeys * kDim, 0.0f);
  ASSERT_TRUE(table->Get(keys, got.data()).ok());
  EXPECT_EQ(values, got);
  ASSERT_TRUE(table->Put(keys, values.data()).ok());

  // Iteration 4: Lookahead is non-blocking and leaves the staleness clocks
  // untouched (§III-C2); values must be unchanged after it drains.
  ASSERT_TRUE(table->Lookahead(keys).ok());
  table->WaitLookahead();
  std::vector<float> after(kKeys * kDim, 0.0f);
  ASSERT_TRUE(table->Get(keys, after.data()).ok());
  EXPECT_EQ(values, after);
}

INSTANTIATE_TEST_SUITE_P(ConsistencyPresets, MlkvSmokeTest,
                         ::testing::Values(kBspBound, 4u, kAspBound),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           if (info.param == kBspBound) return std::string("Bsp");
                           if (info.param == kAspBound) return std::string("Asp");
                           return "Ssp" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mlkv
