#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "io/temp_dir.h"
#include "mlkv/mlkv.h"

namespace mlkv {
namespace {

MlkvOptions SmallMlkv(const TempDir& dir) {
  MlkvOptions o;
  o.dir = dir.File("db");
  o.index_slots = 4096;
  o.page_size = 4096;
  o.mem_size = 16 * 4096;
  o.lookahead_threads = 2;
  return o;
}

TEST(MlkvTest, OpenTableValidatesArguments) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallMlkv(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  EXPECT_TRUE(db->OpenTable("m", 0, 4, &t).IsInvalidArgument());
  ASSERT_TRUE(db->OpenTable("m", 8, 4, &t).ok());
  ASSERT_NE(t, nullptr);
  // Reopening with the same dim returns the same table.
  EmbeddingTable* t2 = nullptr;
  ASSERT_TRUE(db->OpenTable("m", 8, 4, &t2).ok());
  EXPECT_EQ(t, t2);
  // Different dim is an error.
  EXPECT_TRUE(db->OpenTable("m", 16, 4, &t2).IsInvalidArgument());
}

TEST(MlkvTest, GetOrInitIsDeterministicPerKey) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallMlkv(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("emb", 16, kAspBound, &t).ok());
  std::vector<Key> keys = {1, 2, 3};
  std::vector<float> a(3 * 16), b(3 * 16);
  ASSERT_TRUE(t->GetOrInit(keys, a.data()).ok());
  ASSERT_TRUE(t->GetOrInit(keys, b.data()).ok());
  EXPECT_EQ(a, b) << "second fetch must return the stored vectors";
  // Init scale ~ 1/sqrt(dim).
  for (float v : a) {
    EXPECT_LE(std::fabs(v), 1.0f / std::sqrt(16.0f) + 1e-6f);
  }
  // Different keys get different vectors.
  EXPECT_NE(std::vector<float>(a.begin(), a.begin() + 16),
            std::vector<float>(a.begin() + 16, a.begin() + 32));
}

TEST(MlkvTest, PutThenGetRoundTrip) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallMlkv(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("emb", 4, kAspBound, &t).ok());
  std::vector<Key> keys = {10, 20};
  std::vector<float> values = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(t->Put(keys, values.data()).ok());
  std::vector<float> out(8);
  ASSERT_TRUE(t->Get(keys, out.data()).ok());
  EXPECT_EQ(values, out);
}

TEST(MlkvTest, GetMissingKeyFails) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallMlkv(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("emb", 4, kAspBound, &t).ok());
  Key k = 99;
  float out[4];
  EXPECT_TRUE(t->Get({&k, 1}, out).IsNotFound());
}

TEST(MlkvTest, ApplyGradientsIsSgdStep) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallMlkv(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("emb", 4, kAspBound, &t).ok());
  std::vector<Key> keys = {1};
  std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
  ASSERT_TRUE(t->Put(keys, v.data()).ok());
  std::vector<float> g = {0.5f, 0.5f, 0.5f, 0.5f};
  ASSERT_TRUE(t->ApplyGradients(keys, g.data(), /*lr=*/0.1f).ok());
  std::vector<float> out(4);
  ASSERT_TRUE(t->Get(keys, out.data()).ok());
  for (int d = 0; d < 4; ++d) EXPECT_FLOAT_EQ(out[d], v[d] - 0.05f);
}

TEST(MlkvTest, LookaheadPromotesColdKeysToMemory) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallMlkv(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("emb", 16, kAspBound, &t).ok());
  // 4000 x 96B records >> 64 KiB buffer: early keys spill to disk.
  std::vector<float> v(16, 0.5f);
  std::vector<Key> all;
  for (Key k = 0; k < 4000; ++k) {
    ASSERT_TRUE(t->Put({&k, 1}, v.data()).ok());
    all.push_back(k);
  }
  std::vector<Key> cold = {0, 1, 2, 3, 4, 5, 6, 7};
  for (Key k : cold) ASSERT_FALSE(t->store()->IsInMemory(k)) << k;
  ASSERT_TRUE(t->Lookahead(cold).ok());
  t->WaitLookahead();
  for (Key k : cold) EXPECT_TRUE(t->store()->IsInMemory(k)) << k;
  EXPECT_GE(t->store()->stats().promotions, cold.size());
}

TEST(MlkvTest, LookaheadToApplicationCache) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(SmallMlkv(dir), &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("emb", 8, kAspBound, &t).ok());
  std::vector<float> v = {1, 2, 3, 4, 5, 6, 7, 8};
  Key k = 42;
  ASSERT_TRUE(t->Put({&k, 1}, v.data()).ok());
  EmbeddingCache cache(128, 8);
  ASSERT_TRUE(t->Lookahead({&k, 1},
                           EmbeddingTable::LookaheadDest::kApplicationCache,
                           &cache)
                  .ok());
  t->WaitLookahead();
  std::vector<float> out(8);
  ASSERT_TRUE(cache.Get(k, out.data()));
  EXPECT_EQ(out, v);
}

TEST(MlkvTest, CheckpointAllWritesFiles) {
  TempDir dir;
  std::unique_ptr<Mlkv> db;
  const MlkvOptions o = SmallMlkv(dir);
  ASSERT_TRUE(Mlkv::Open(o, &db).ok());
  EmbeddingTable* t = nullptr;
  ASSERT_TRUE(db->OpenTable("emb", 4, kAspBound, &t).ok());
  std::vector<float> v = {1, 2, 3, 4};
  Key k = 1;
  ASSERT_TRUE(t->Put({&k, 1}, v.data()).ok());
  ASSERT_TRUE(db->CheckpointAll().ok());
  // Sharded layout: every shard checkpoints under its own directory.
  for (size_t s = 0; s < t->store()->num_shards(); ++s) {
    const std::string prefix = ShardedStore::ShardFilePath(
        o.dir + "/emb.ckpt", static_cast<uint32_t>(s),
        t->store()->shard_bits());
    EXPECT_TRUE(std::filesystem::exists(prefix + ".meta")) << prefix;
    EXPECT_TRUE(std::filesystem::exists(prefix + ".idx")) << prefix;
  }
}


TEST(MlkvTest, LookaheadNeverAdvancesStalenessClocks) {
  // Regression: the application-cache Lookahead path must use Peek, not a
  // tracked Read. A tracked prefetch would raise each record's staleness
  // clock with no matching Put, eventually starving bounded Gets
  // (paper §III-C2: lookahead leaves the vector clocks untouched).
  TempDir dir;
  MlkvOptions o = SmallMlkv(dir);
  o.busy_spin_limit = 1 << 10;  // fail fast if a Get would starve
  std::unique_ptr<Mlkv> db;
  ASSERT_TRUE(Mlkv::Open(o, &db).ok());
  EmbeddingTable* t = nullptr;
  // Bound 0 (BSP): any stray increment makes the next Get spin.
  ASSERT_TRUE(db->OpenTable("emb", 8, kBspBound, &t).ok());
  Key key = 42;
  std::vector<float> v(8, 1.0f);
  ASSERT_TRUE(t->Put({&key, 1}, v.data()).ok());

  EmbeddingCache cache(64, 8);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(t->Lookahead({&key, 1},
                             EmbeddingTable::LookaheadDest::kApplicationCache,
                             &cache)
                    .ok());
  }
  t->WaitLookahead();
  // Storage-buffer lookahead must not touch clocks either.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(t->Lookahead({&key, 1}).ok());
  }
  t->WaitLookahead();
  ASSERT_TRUE(t->Get({&key, 1}, v.data()).ok())
      << "prefetches must not consume the staleness budget";
  ASSERT_TRUE(t->Put({&key, 1}, v.data()).ok());
}

TEST(EmbeddingCacheTest, LruEvictsOldest) {
  EmbeddingCache cache(/*capacity=*/16, /*dim=*/2, /*shards=*/1);
  float v[2] = {1, 2};
  for (Key k = 0; k < 20; ++k) cache.Put(k, v);
  EXPECT_LE(cache.size(), 16u);
  float out[2];
  EXPECT_FALSE(cache.Get(0, out)) << "oldest entries must be evicted";
  EXPECT_TRUE(cache.Get(19, out));
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(EmbeddingCacheTest, GetRefreshesRecency) {
  EmbeddingCache cache(4, 1, 1);
  float v[1] = {9};
  for (Key k = 0; k < 4; ++k) cache.Put(k, v);
  float out[1];
  ASSERT_TRUE(cache.Get(0, out));  // refresh key 0
  cache.Put(100, v);               // evicts key 1, not key 0
  EXPECT_TRUE(cache.Get(0, out));
  EXPECT_FALSE(cache.Get(1, out));
}

TEST(EmbeddingCacheTest, ConcurrentAccessIsSafe) {
  EmbeddingCache cache(1024, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      float v[4] = {float(t), 0, 0, 0};
      float out[4];
      for (int i = 0; i < 10000; ++i) {
        cache.Put(i % 500, v);
        cache.Get((i * 7) % 500, out);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), 1024u);
}

}  // namespace
}  // namespace mlkv
