// Log scan (LogIterator / LiveLogIterator) and garbage collection
// (FasterStore::Compact) tests, including a model-based property sweep and
// a concurrent writer stress test.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "io/temp_dir.h"
#include "kv/faster_store.h"
#include "kv/log_iterator.h"

namespace mlkv {
namespace {

FasterOptions SmallStore(const TempDir& dir, const char* name = "store.log") {
  FasterOptions o;
  o.path = dir.File(name);
  o.index_slots = 1024;
  o.page_size = 4096;
  o.mem_size = 8 * 4096;
  o.mutable_fraction = 0.5;
  return o;
}

std::string PadValue(uint64_t key, uint32_t size) {
  std::string v = "v" + std::to_string(key) + "#";
  v.resize(size, 'x');
  return v;
}

// ---------------------------------------------------------------- scans --

TEST(LogIteratorTest, EmptyStoreYieldsNothing) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  LogIterator it(&store);
  EXPECT_FALSE(it.Valid());
  EXPECT_TRUE(it.status().ok());
}

TEST(LogIteratorTest, SingleRecord) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  ASSERT_TRUE(store.Upsert(7, "hello", 5).ok());
  LogIterator it(&store);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.meta().key, 7u);
  EXPECT_EQ(std::string(it.value().data(), it.value().size()), "hello");
  it.Next();
  EXPECT_FALSE(it.Valid());
}

TEST(LogIteratorTest, ScanSeesAllVersionsInOrder) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  // Different sizes force RCU appends, so three versions coexist in the log.
  ASSERT_TRUE(store.Upsert(1, "a", 1).ok());
  ASSERT_TRUE(store.Upsert(1, "bb", 2).ok());
  ASSERT_TRUE(store.Upsert(1, "ccc", 3).ok());
  std::vector<std::string> versions;
  for (LogIterator it(&store); it.Valid(); it.Next()) {
    EXPECT_EQ(it.meta().key, 1u);
    versions.emplace_back(it.value().data(), it.value().size());
  }
  ASSERT_EQ(versions.size(), 3u);
  EXPECT_EQ(versions[0], "a");
  EXPECT_EQ(versions[1], "bb");
  EXPECT_EQ(versions[2], "ccc");
}

TEST(LogIteratorTest, SkipsPageRollGaps) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  // 1000-byte values + 32-byte headers don't tile a 4096-byte page evenly,
  // so every page ends in a gap the iterator has to hop over.
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    const std::string v = PadValue(i, 1000);
    ASSERT_TRUE(store.Upsert(i, v.data(), v.size()).ok());
  }
  int seen = 0;
  for (LogIterator it(&store); it.Valid(); it.Next()) {
    EXPECT_EQ(it.meta().key, static_cast<Key>(seen));
    EXPECT_EQ(std::string(it.value().data(), it.value().size()),
              PadValue(seen, 1000));
    ++seen;
  }
  EXPECT_EQ(seen, n);
}

TEST(LogIteratorTest, ScanCoversDiskResidentPrefix) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  const int n = 300;  // ~300 * 136B spans many more pages than fit in memory
  for (int i = 0; i < n; ++i) {
    const std::string v = PadValue(i, 100);
    ASSERT_TRUE(store.Upsert(i, v.data(), v.size()).ok());
  }
  ASSERT_GT(store.log().head_address(), HybridLog::kLogBegin);
  int seen = 0;
  for (LogIterator it(&store); it.Valid(); it.Next()) ++seen;
  EXPECT_EQ(seen, n);
}

TEST(LogIteratorTest, TombstonesAppearInRawScan) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  ASSERT_TRUE(store.Upsert(1, "abc", 3).ok());
  ASSERT_TRUE(store.Delete(1).ok());
  int records = 0, tombstones = 0;
  for (LogIterator it(&store); it.Valid(); it.Next()) {
    ++records;
    if (it.meta().flags & kRecordTombstone) ++tombstones;
  }
  EXPECT_EQ(records, 2);
  EXPECT_EQ(tombstones, 1);
}

TEST(LogIteratorTest, ExplicitRangeLimitsScan) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Upsert(i, "abcd", 4).ok());
  }
  // Find the address of record 5 with a full scan, then scan from there.
  Address from = kInvalidAddress;
  for (LogIterator it(&store); it.Valid(); it.Next()) {
    if (it.meta().key == 5) from = it.address();
  }
  ASSERT_NE(from, kInvalidAddress);
  int seen = 0;
  for (LogIterator it(&store, from); it.Valid(); it.Next()) ++seen;
  EXPECT_EQ(seen, 5);  // keys 5..9
}

TEST(LiveLogIteratorTest, YieldsOnlyNewestVersions) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  ASSERT_TRUE(store.Upsert(1, "a", 1).ok());
  ASSERT_TRUE(store.Upsert(1, "bb", 2).ok());
  ASSERT_TRUE(store.Upsert(2, "cc", 2).ok());
  ASSERT_TRUE(store.Upsert(3, "d", 1).ok());
  ASSERT_TRUE(store.Delete(3).ok());
  std::map<Key, std::string> live;
  for (LiveLogIterator it(&store); it.Valid(); it.Next()) {
    live[it.meta().key] = std::string(it.value().data(), it.value().size());
  }
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[1], "bb");
  EXPECT_EQ(live[2], "cc");
}

// ----------------------------------------------------------- compaction --

TEST(CompactTest, NothingColdIsANoOp) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  ASSERT_TRUE(store.Upsert(1, "abc", 3).ok());
  CompactionResult r;
  ASSERT_TRUE(store.Compact(store.log().read_only_address(), &r).ok());
  EXPECT_EQ(r.scanned, 0u);
  std::string out;
  ASSERT_TRUE(store.Read(1, &out).ok());
  EXPECT_EQ(out, "abc");
}

TEST(CompactTest, PreservesAllLiveRecords) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const std::string v = PadValue(i, 100);
    ASSERT_TRUE(store.Upsert(i, v.data(), v.size()).ok());
  }
  CompactionResult r;
  ASSERT_TRUE(store.Compact(store.log().read_only_address(), &r).ok());
  EXPECT_GT(r.live_copied, 0u);
  EXPECT_EQ(store.log().begin_address(), r.new_begin);
  for (int i = 0; i < n; ++i) {
    std::string out;
    ASSERT_TRUE(store.Read(i, &out).ok()) << "key " << i;
    EXPECT_EQ(out, PadValue(i, 100));
  }
}

TEST(CompactTest, DropsSupersededVersions) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  // Many RCU updates of one key: all but the newest version are dead.
  for (int i = 1; i <= 400; ++i) {
    const std::string v = PadValue(7, 100 + (i % 3));
    ASSERT_TRUE(store.Upsert(7, v.data(), v.size()).ok());
  }
  ASSERT_GT(store.log().read_only_address(), HybridLog::kLogBegin);
  CompactionResult r;
  ASSERT_TRUE(store.Compact(store.log().read_only_address(), &r).ok());
  EXPECT_GT(r.dead_skipped, 0u);
  EXPECT_LE(r.live_copied, 1u);
  std::string out;
  ASSERT_TRUE(store.Read(7, &out).ok());
}

TEST(CompactTest, RetiresTombstones) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    const std::string v = PadValue(i, 100);
    ASSERT_TRUE(store.Upsert(i, v.data(), v.size()).ok());
  }
  for (int i = 0; i < n; i += 2) {
    ASSERT_TRUE(store.Delete(i).ok());
  }
  // Push everything below the read-only boundary with filler traffic.
  for (int i = 1000; i < 1100; ++i) {
    const std::string v = PadValue(i, 100);
    ASSERT_TRUE(store.Upsert(i, v.data(), v.size()).ok());
  }
  CompactionResult r;
  ASSERT_TRUE(store.Compact(store.log().read_only_address(), &r).ok());
  EXPECT_GT(r.tombstones_dropped, 0u);
  for (int i = 0; i < n; ++i) {
    std::string out;
    if (i % 2 == 0) {
      EXPECT_TRUE(store.Read(i, &out).IsNotFound()) << "key " << i;
    } else {
      ASSERT_TRUE(store.Read(i, &out).ok()) << "key " << i;
      EXPECT_EQ(out, PadValue(i, 100));
    }
  }
}

TEST(CompactTest, PreservesControlWord) {
  TempDir dir;
  FasterOptions o = SmallStore(dir);
  o.track_staleness = true;
  o.staleness_bound = 100;
  FasterStore store;
  ASSERT_TRUE(store.Open(o).ok());
  std::string v = PadValue(1, 100);
  ASSERT_TRUE(store.Upsert(1, v.data(), v.size()).ok());
  // Three tracked Gets push staleness to 3 while the record is mutable.
  std::string out;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(store.Read(1, &out).ok());
  // An RCU update (different size) carries staleness-1, generation+1.
  v = PadValue(1, 101);
  ASSERT_TRUE(store.Upsert(1, v.data(), v.size()).ok());
  // Push the version cold, then compact.
  for (int i = 1000; i < 1200; ++i) {
    const std::string f = PadValue(i, 100);
    ASSERT_TRUE(store.Upsert(i, f.data(), f.size()).ok());
  }
  uint32_t staleness_before = 0, generation_before = 0;
  for (LiveLogIterator it(&store); it.Valid(); it.Next()) {
    if (it.meta().key == 1) {
      staleness_before = ControlWord::Staleness(it.meta().control);
      generation_before = ControlWord::Generation(it.meta().control);
    }
  }
  EXPECT_EQ(staleness_before, 2u);
  ASSERT_TRUE(store.Compact(store.log().read_only_address(), nullptr).ok());
  bool found = false;
  for (LiveLogIterator it(&store); it.Valid(); it.Next()) {
    if (it.meta().key == 1) {
      found = true;
      EXPECT_EQ(ControlWord::Staleness(it.meta().control), staleness_before);
      EXPECT_EQ(ControlWord::Generation(it.meta().control),
                generation_before);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CompactTest, RepeatedCompactionConverges) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  const int n = 100;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < n; ++i) {
      const std::string v = PadValue(i * 31 + round, 100);
      ASSERT_TRUE(store.Upsert(i, v.data(), v.size()).ok());
    }
    CompactionResult r;
    ASSERT_TRUE(store.Compact(store.log().read_only_address(), &r).ok());
  }
  for (int i = 0; i < n; ++i) {
    std::string out;
    ASSERT_TRUE(store.Read(i, &out).ok());
    EXPECT_EQ(out, PadValue(i * 31 + 4, 100));
  }
}

TEST(CompactTest, MaybeCompactRespectsThreshold) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  // Enough traffic that a cold prefix exists below the read-only boundary.
  for (int i = 0; i < 500; ++i) {
    const std::string v = PadValue(i, 100);
    ASSERT_TRUE(store.Upsert(i, v.data(), v.size()).ok());
  }
  ASSERT_GT(store.log().read_only_address(), HybridLog::kLogBegin);
  const Address begin_before = store.log().begin_address();
  // Generous threshold: no compaction.
  ASSERT_TRUE(store.MaybeCompact(1ull << 30).ok());
  EXPECT_EQ(store.log().begin_address(), begin_before);
  // Tiny threshold: compaction advances begin.
  ASSERT_TRUE(store.MaybeCompact(1).ok());
  EXPECT_GT(store.log().begin_address(), begin_before);
  EXPECT_EQ(store.stats().compactions, 1u);
}

TEST(CompactTest, SurvivesCheckpointRecoverCycle) {
  TempDir dir;
  FasterOptions o = SmallStore(dir);
  const int n = 120;
  {
    FasterStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (int i = 0; i < n; ++i) {
      const std::string v = PadValue(i, 100);
      ASSERT_TRUE(store.Upsert(i, v.data(), v.size()).ok());
    }
    for (int i = 0; i < n; i += 3) ASSERT_TRUE(store.Delete(i).ok());
    ASSERT_TRUE(store.Compact(store.log().read_only_address(), nullptr).ok());
    ASSERT_TRUE(store.Checkpoint(dir.File("ckpt")).ok());
  }
  FasterStore recovered;
  ASSERT_TRUE(recovered.Recover(o, dir.File("ckpt")).ok());
  EXPECT_GT(recovered.log().begin_address(), HybridLog::kLogBegin);
  for (int i = 0; i < n; ++i) {
    std::string out;
    if (i % 3 == 0) {
      EXPECT_TRUE(recovered.Read(i, &out).IsNotFound()) << "key " << i;
    } else {
      ASSERT_TRUE(recovered.Read(i, &out).ok()) << "key " << i;
      EXPECT_EQ(out, PadValue(i, 100));
    }
  }
}


TEST(CompactTest, EmptyStoreCompactIsNoOp) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  CompactionResult r;
  ASSERT_TRUE(store.Compact(store.log().read_only_address(), &r).ok());
  EXPECT_EQ(r.scanned, 0u);
  EXPECT_EQ(store.log().begin_address(), HybridLog::kLogBegin);
}

TEST(CompactTest, SecondCompactorGetsBusy) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  // Hold the compaction lock indirectly by racing many tiny compactions;
  // single-threaded, just check the API: a compaction in progress cannot
  // be observed here, so assert the lock is released after each call.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.Compact(store.log().read_only_address(), nullptr).ok());
  }
}

TEST(LogIteratorTest, EndBoundIsSnapshotted) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(SmallStore(dir)).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Upsert(i, "abcd", 4).ok());
  }
  LogIterator it(&store);
  // Records appended after construction are outside the snapshot bound.
  for (int i = 100; i < 140; ++i) {
    ASSERT_TRUE(store.Upsert(i, "efgh", 4).ok());
  }
  int seen = 0;
  for (; it.Valid(); it.Next()) ++seen;
  EXPECT_EQ(seen, 10);
}

// Model-based sweep: random upserts/deletes checked against std::map after
// compaction, across several page/buffer geometries.
struct GeometryParam {
  uint64_t page_size;
  uint64_t mem_pages;
  uint32_t value_size;
};

class CompactModelTest : public ::testing::TestWithParam<GeometryParam> {};

TEST_P(CompactModelTest, MatchesModelAfterCompaction) {
  const GeometryParam p = GetParam();
  TempDir dir;
  FasterOptions o;
  o.path = dir.File("store.log");
  o.index_slots = 2048;
  o.page_size = p.page_size;
  o.mem_size = p.mem_pages * p.page_size;
  FasterStore store;
  ASSERT_TRUE(store.Open(o).ok());

  Rng rng(42);
  std::map<Key, std::string> model;
  const int kOps = 3000;
  const int kKeySpace = 400;
  for (int op = 0; op < kOps; ++op) {
    const Key key = rng.Next() % kKeySpace;
    if (rng.NextDouble() < 0.15 && model.count(key)) {
      ASSERT_TRUE(store.Delete(key).ok());
      model.erase(key);
    } else {
      std::string v = PadValue(key * 1000 + op, p.value_size);
      ASSERT_TRUE(store.Upsert(key, v.data(), v.size()).ok());
      model[key] = v;
    }
    if (op % 997 == 0) {
      ASSERT_TRUE(
          store.Compact(store.log().read_only_address(), nullptr).ok());
    }
  }
  ASSERT_TRUE(store.Compact(store.log().read_only_address(), nullptr).ok());

  for (int key = 0; key < kKeySpace; ++key) {
    std::string out;
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(store.Read(key, &out).IsNotFound()) << "key " << key;
    } else {
      ASSERT_TRUE(store.Read(key, &out).ok()) << "key " << key;
      EXPECT_EQ(out, it->second) << "key " << key;
    }
  }
  // The live scan agrees with the model too.
  std::map<Key, std::string> scanned;
  for (LiveLogIterator it(&store); it.Valid(); it.Next()) {
    scanned[it.meta().key] =
        std::string(it.value().data(), it.value().size());
  }
  EXPECT_EQ(scanned, model);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CompactModelTest,
    ::testing::Values(GeometryParam{4096, 8, 24},
                      GeometryParam{4096, 4, 100},
                      GeometryParam{16384, 8, 56},
                      GeometryParam{8192, 16, 200}),
    [](const ::testing::TestParamInfo<GeometryParam>& info) {
      return "page" + std::to_string(info.param.page_size) + "x" +
             std::to_string(info.param.mem_pages) + "v" +
             std::to_string(info.param.value_size);
    });

// Concurrent writers while a compaction loop runs. Each writer owns a
// disjoint key range and writes monotonically increasing payload versions;
// after the dust settles every key must hold its owner's last write.
TEST(CompactTest, ConcurrentWritersStress) {
  TempDir dir;
  FasterOptions o = SmallStore(dir);
  o.index_slots = 4096;
  o.mem_size = 16 * 4096;
  FasterStore store;
  ASSERT_TRUE(store.Open(o).ok());

  constexpr int kWriters = 4;
  constexpr int kKeysPerWriter = 64;
  constexpr int kRoundsPerWriter = 60;
  std::vector<std::vector<uint64_t>> last_written(
      kWriters, std::vector<uint64_t>(kKeysPerWriter, 0));

  std::atomic<bool> stop{false};
  std::thread compactor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Status s = store.Compact(store.log().read_only_address(), nullptr);
      ASSERT_TRUE(s.ok() || s.IsBusy()) << s.ToString();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(1234 + w);
      for (int round = 1; round <= kRoundsPerWriter; ++round) {
        for (int k = 0; k < kKeysPerWriter; ++k) {
          const Key key = static_cast<Key>(w) * kKeysPerWriter + k;
          const uint64_t version =
              static_cast<uint64_t>(round) * 1000 + rng.Next() % 1000;
          // Vary size so updates mix in-place and RCU paths.
          std::string v = PadValue(version, 40 + (round % 3) * 8);
          std::memcpy(v.data(), &version, sizeof(version));
          ASSERT_TRUE(store.Upsert(key, v.data(), v.size()).ok());
          last_written[w][k] = version;
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  compactor.join();

  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      const Key key = static_cast<Key>(w) * kKeysPerWriter + k;
      std::string out;
      ASSERT_TRUE(store.Read(key, &out).ok()) << "key " << key;
      uint64_t version = 0;
      std::memcpy(&version, out.data(), sizeof(version));
      EXPECT_EQ(version, last_written[w][k]) << "key " << key;
    }
  }
}

// Readers racing the compactor must always observe the newest committed
// value (single writer per key, monotonically increasing versions).
TEST(CompactTest, ConcurrentReadersSeeMonotonicVersions) {
  TempDir dir;
  FasterOptions o = SmallStore(dir);
  o.mem_size = 16 * 4096;
  FasterStore store;
  ASSERT_TRUE(store.Open(o).ok());

  constexpr int kKeys = 32;
  std::atomic<bool> stop{false};
  std::vector<std::atomic<uint64_t>> committed(kKeys);
  for (auto& c : committed) c.store(0);

  // Seed.
  for (int k = 0; k < kKeys; ++k) {
    uint64_t version = 1;
    std::string v = PadValue(k, 64);
    std::memcpy(v.data(), &version, sizeof(version));
    ASSERT_TRUE(store.Upsert(k, v.data(), v.size()).ok());
    committed[k].store(1);
  }

  std::thread writer([&] {
    Rng rng(7);
    for (int round = 2; round < 400; ++round) {
      const int k = static_cast<int>(rng.Next() % kKeys);
      std::string v = PadValue(k, 64 + (round % 2) * 8);
      uint64_t version = static_cast<uint64_t>(round);
      std::memcpy(v.data(), &version, sizeof(version));
      ASSERT_TRUE(store.Upsert(k, v.data(), v.size()).ok());
      committed[k].store(version, std::memory_order_release);
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread compactor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Status s = store.Compact(store.log().read_only_address(), nullptr);
      ASSERT_TRUE(s.ok() || s.IsBusy());
    }
  });
  std::thread reader([&] {
    Rng rng(11);
    while (!stop.load(std::memory_order_acquire)) {
      const int k = static_cast<int>(rng.Next() % kKeys);
      const uint64_t floor = committed[k].load(std::memory_order_acquire);
      std::string out;
      ASSERT_TRUE(store.Read(k, &out).ok());
      uint64_t version = 0;
      std::memcpy(&version, out.data(), sizeof(version));
      EXPECT_GE(version, floor) << "stale read on key " << k;
    }
  });
  writer.join();
  compactor.join();
  reader.join();
}

}  // namespace
}  // namespace mlkv
