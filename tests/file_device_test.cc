#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "io/file_device.h"
#include "io/temp_dir.h"

namespace mlkv {
namespace {

TEST(FileDeviceTest, WriteReadRoundTrip) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("a.dat")).ok());
  const std::string payload = "hello hybrid log";
  ASSERT_TRUE(dev.WriteAt(100, payload.data(), payload.size()).ok());
  std::vector<char> buf(payload.size());
  ASSERT_TRUE(dev.ReadAt(100, buf.data(), buf.size()).ok());
  EXPECT_EQ(std::string(buf.begin(), buf.end()), payload);
}

TEST(FileDeviceTest, ReadPastEofZeroFills) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("b.dat")).ok());
  ASSERT_TRUE(dev.WriteAt(0, "xy", 2).ok());
  char buf[8];
  std::memset(buf, 0x7f, sizeof(buf));
  ASSERT_TRUE(dev.ReadAt(0, buf, sizeof(buf)).ok());
  EXPECT_EQ(buf[0], 'x');
  EXPECT_EQ(buf[1], 'y');
  for (int i = 2; i < 8; ++i) EXPECT_EQ(buf[i], 0) << i;
}

TEST(FileDeviceTest, FileSizeAndTruncate) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("c.dat")).ok());
  ASSERT_TRUE(dev.WriteAt(4095, "z", 1).ok());
  EXPECT_EQ(dev.FileSize(), 4096u);
  ASSERT_TRUE(dev.Truncate(128).ok());
  EXPECT_EQ(dev.FileSize(), 128u);
}

TEST(FileDeviceTest, CountersTrackTraffic) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("d.dat")).ok());
  ASSERT_TRUE(dev.WriteAt(0, "abcd", 4).ok());
  char b[4];
  ASSERT_TRUE(dev.ReadAt(0, b, 4).ok());
  EXPECT_EQ(dev.bytes_written(), 4u);
  EXPECT_EQ(dev.bytes_read(), 4u);
}

TEST(FileDeviceTest, ReopenWithoutTruncateKeepsData) {
  TempDir dir;
  const std::string path = dir.File("e.dat");
  {
    FileDevice dev;
    ASSERT_TRUE(dev.Open(path).ok());
    ASSERT_TRUE(dev.WriteAt(0, "keep", 4).ok());
  }
  FileDevice dev;
  ASSERT_TRUE(dev.Open(path, /*truncate=*/false).ok());
  char b[4];
  ASSERT_TRUE(dev.ReadAt(0, b, 4).ok());
  EXPECT_EQ(std::string(b, 4), "keep");
}

TEST(FileDeviceTest, OpenTruncateDiscardsData) {
  TempDir dir;
  const std::string path = dir.File("f.dat");
  {
    FileDevice dev;
    ASSERT_TRUE(dev.Open(path).ok());
    ASSERT_TRUE(dev.WriteAt(0, "gone", 4).ok());
  }
  FileDevice dev;
  ASSERT_TRUE(dev.Open(path, /*truncate=*/true).ok());
  EXPECT_EQ(dev.FileSize(), 0u);
}

TEST(FileDeviceTest, OpenBadPathFails) {
  FileDevice dev;
  EXPECT_TRUE(dev.Open("/nonexistent-dir-xyz/file").IsIOError());
}


TEST(FileDeviceTest, PunchHoleKeepsSizeAndZeroesNothingLogical) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("f")).ok());
  std::vector<char> block(8192, 'x');
  ASSERT_TRUE(dev.WriteAt(0, block.data(), block.size()).ok());
  const uint64_t size = dev.FileSize();
  ASSERT_TRUE(dev.PunchHole(0, 4096).ok());
  EXPECT_EQ(dev.FileSize(), size) << "KEEP_SIZE semantics";
  // The tail region is untouched.
  std::vector<char> out(4096);
  ASSERT_TRUE(dev.ReadAt(4096, out.data(), out.size()).ok());
  EXPECT_EQ(out[0], 'x');
}

TEST(FileDeviceTest, PunchHoleZeroLengthIsNoOp) {
  TempDir dir;
  FileDevice dev;
  ASSERT_TRUE(dev.Open(dir.File("f")).ok());
  ASSERT_TRUE(dev.PunchHole(0, 0).ok());
}

}  // namespace
}  // namespace mlkv
