// Durability and scan tests for the baseline engines: WAL record format,
// crash recovery (including fault injection on the WAL tail), LEVELS
// manifest recovery, and range scans on the LSM store and the B+tree.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "btree/btree_store.h"
#include "common/random.h"
#include "io/temp_dir.h"
#include "lsm/lsm_store.h"
#include "lsm/wal.h"

namespace mlkv {
namespace {

LsmOptions SmallLsm(const TempDir& dir) {
  LsmOptions o;
  o.dir = dir.path() + "/lsm";
  o.memtable_bytes = 4096;
  o.block_cache_bytes = 1 << 20;
  o.block_size = 1024;
  o.l0_compaction_trigger = 3;
  return o;
}

// ------------------------------------------------------------------ WAL --

TEST(WalTest, EmptyFileReplaysNothing) {
  TempDir dir;
  uint64_t n = 99;
  ASSERT_TRUE(ReplayWal(dir.File("missing.wal"),
                        [](Key, const std::string&, bool) { FAIL(); }, &n)
                  .ok());
  EXPECT_EQ(n, 0u);
}

TEST(WalTest, RoundTripsPutsAndDeletes) {
  TempDir dir;
  const std::string path = dir.File("w.wal");
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    ASSERT_TRUE(w.AppendPut(1, "alpha", 5).ok());
    ASSERT_TRUE(w.AppendDelete(2).ok());
    ASSERT_TRUE(w.AppendPut(3, "b", 1).ok());
    ASSERT_TRUE(w.Sync().ok());
  }
  std::vector<std::tuple<Key, std::string, bool>> got;
  uint64_t n = 0;
  ASSERT_TRUE(ReplayWal(path,
                        [&](Key k, const std::string& v, bool tomb) {
                          got.emplace_back(k, v, tomb);
                        },
                        &n)
                  .ok());
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(got[0], std::make_tuple(Key{1}, std::string("alpha"), false));
  EXPECT_EQ(got[1], std::make_tuple(Key{2}, std::string(), true));
  EXPECT_EQ(got[2], std::make_tuple(Key{3}, std::string("b"), false));
}

TEST(WalTest, ResetEmptiesTheLog) {
  TempDir dir;
  const std::string path = dir.File("w.wal");
  WalWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  ASSERT_TRUE(w.AppendPut(1, "x", 1).ok());
  ASSERT_TRUE(w.Reset().ok());
  EXPECT_EQ(w.bytes(), 0u);
  uint64_t n = 0;
  ASSERT_TRUE(
      ReplayWal(path, [](Key, const std::string&, bool) {}, &n).ok());
  EXPECT_EQ(n, 0u);
}

TEST(WalTest, TornTailStopsReplayCleanly) {
  TempDir dir;
  const std::string path = dir.File("w.wal");
  uint64_t full_size = 0;
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    ASSERT_TRUE(w.AppendPut(1, "aaaa", 4).ok());
    ASSERT_TRUE(w.AppendPut(2, "bbbb", 4).ok());
    ASSERT_TRUE(w.Sync().ok());
    full_size = w.bytes();
  }
  // Chop the last record in half (simulated crash mid-write).
  std::filesystem::resize_file(path, full_size - 3);
  uint64_t n = 0;
  std::vector<Key> keys;
  ASSERT_TRUE(ReplayWal(path,
                        [&](Key k, const std::string&, bool) {
                          keys.push_back(k);
                        },
                        &n)
                  .ok());
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(keys[0], 1u);
}

TEST(WalTest, CorruptMiddleByteStopsAtTheRecord) {
  TempDir dir;
  const std::string path = dir.File("w.wal");
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    ASSERT_TRUE(w.AppendPut(1, "aaaa", 4).ok());
    ASSERT_TRUE(w.AppendPut(2, "bbbb", 4).ok());
    ASSERT_TRUE(w.AppendPut(3, "cccc", 4).ok());
  }
  // Flip a byte inside record 2's value.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(21 + 18, std::ios::beg);  // record size = 17 + 4 = 21 bytes
  f.put('X');
  f.close();
  uint64_t n = 0;
  ASSERT_TRUE(
      ReplayWal(path, [](Key, const std::string&, bool) {}, &n).ok());
  EXPECT_EQ(n, 1u);  // only the first record survives
}

// -------------------------------------------------------- LSM recovery --

TEST(LsmRecoveryTest, RecoversFlushedAndUnflushedWrites) {
  TempDir dir;
  const LsmOptions o = SmallLsm(dir);
  std::map<Key, std::string> model;
  {
    LsmStore store;
    ASSERT_TRUE(store.Open(o).ok());
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
      const Key k = rng.Next() % 200;
      const std::string v = "v" + std::to_string(i);
      ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
      model[k] = v;
    }
    // Deliberately NO Flush(): the tail lives only in the WAL.
  }
  LsmStore recovered;
  ASSERT_TRUE(recovered.Open(o).ok());
  for (const auto& [k, v] : model) {
    std::string out;
    ASSERT_TRUE(recovered.Get(k, &out).ok()) << "key " << k;
    EXPECT_EQ(out, v);
  }
}

TEST(LsmRecoveryTest, RecoversDeletes) {
  TempDir dir;
  const LsmOptions o = SmallLsm(dir);
  {
    LsmStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (Key k = 0; k < 50; ++k) {
      const std::string v = "v" + std::to_string(k);
      ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
    }
    for (Key k = 0; k < 50; k += 2) ASSERT_TRUE(store.Delete(k).ok());
  }
  LsmStore recovered;
  ASSERT_TRUE(recovered.Open(o).ok());
  for (Key k = 0; k < 50; ++k) {
    std::string out;
    if (k % 2 == 0) {
      EXPECT_TRUE(recovered.Get(k, &out).IsNotFound()) << "key " << k;
    } else {
      ASSERT_TRUE(recovered.Get(k, &out).ok()) << "key " << k;
    }
  }
}

TEST(LsmRecoveryTest, SurvivesTornWalTail) {
  TempDir dir;
  const LsmOptions o = SmallLsm(dir);
  {
    LsmStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (Key k = 0; k < 20; ++k) {
      const std::string v = "value" + std::to_string(k);
      ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
    }
  }
  // Crash injection: chop bytes off the WAL tail.
  const std::string wal = o.dir + "/WAL";
  ASSERT_TRUE(std::filesystem::exists(wal));
  const auto size = std::filesystem::file_size(wal);
  ASSERT_GT(size, 4u);
  std::filesystem::resize_file(wal, size - 4);
  LsmStore recovered;
  ASSERT_TRUE(recovered.Open(o).ok());
  // Everything except (at most) the torn-off tail record must be intact.
  for (Key k = 0; k + 1 < 20; ++k) {
    std::string out;
    ASSERT_TRUE(recovered.Get(k, &out).ok()) << "key " << k;
    EXPECT_EQ(out, "value" + std::to_string(k));
  }
}

TEST(LsmRecoveryTest, DoubleRecoveryIsStable) {
  TempDir dir;
  const LsmOptions o = SmallLsm(dir);
  {
    LsmStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (Key k = 0; k < 300; ++k) {
      const std::string v = "v" + std::to_string(k);
      ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
    }
  }
  {
    LsmStore once;
    ASSERT_TRUE(once.Open(o).ok());
    const std::string v = "extra";
    Key k = 1000;
    ASSERT_TRUE(once.Put(k, v.data(), v.size()).ok());
  }
  LsmStore twice;
  ASSERT_TRUE(twice.Open(o).ok());
  std::string out;
  for (Key k = 0; k < 300; ++k) {
    ASSERT_TRUE(twice.Get(k, &out).ok()) << "key " << k;
  }
  ASSERT_TRUE(twice.Get(1000, &out).ok());
  EXPECT_EQ(out, "extra");
}

TEST(LsmRecoveryTest, WalDisabledLosesOnlyMemtable) {
  TempDir dir;
  LsmOptions o = SmallLsm(dir);
  o.enable_wal = false;
  {
    LsmStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (Key k = 0; k < 300; ++k) {
      const std::string v = "v" + std::to_string(k);
      ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
    }
    ASSERT_TRUE(store.Flush().ok());
    // Unflushed write that will be lost without a WAL.
    const std::string v = "lost";
    Key k = 5000;
    ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
  }
  LsmStore recovered;
  ASSERT_TRUE(recovered.Open(o).ok());
  std::string out;
  for (Key k = 0; k < 300; ++k) {
    ASSERT_TRUE(recovered.Get(k, &out).ok()) << "key " << k;
  }
  EXPECT_TRUE(recovered.Get(5000, &out).IsNotFound());
}

// ------------------------------------------------------------ LSM scan --

TEST(LsmScanTest, MergesAllLevelsNewestWins) {
  TempDir dir;
  LsmStore store;
  ASSERT_TRUE(store.Open(SmallLsm(dir)).ok());
  // Enough writes to populate L1 (via compaction), L0, and the memtable,
  // with overlapping key versions.
  for (int round = 0; round < 6; ++round) {
    for (Key k = 0; k < 120; ++k) {
      const std::string v = "r" + std::to_string(round) + "k" +
                            std::to_string(k);
      ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
    }
  }
  ASSERT_GT(store.l1_run_count() + store.l0_run_count(), 0u);
  std::map<Key, std::string> got;
  ASSERT_TRUE(store.Scan(10, 50, [&](Key k, const std::string& v) {
    got[k] = v;
  }).ok());
  ASSERT_EQ(got.size(), 41u);
  for (Key k = 10; k <= 50; ++k) {
    EXPECT_EQ(got[k], "r5k" + std::to_string(k)) << "key " << k;
  }
}

TEST(LsmScanTest, SkipsDeletedKeys) {
  TempDir dir;
  LsmStore store;
  ASSERT_TRUE(store.Open(SmallLsm(dir)).ok());
  for (Key k = 0; k < 100; ++k) {
    const std::string v = "v" + std::to_string(k);
    ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
  }
  for (Key k = 0; k < 100; k += 3) ASSERT_TRUE(store.Delete(k).ok());
  int count = 0;
  ASSERT_TRUE(store.Scan(0, 99, [&](Key k, const std::string&) {
    EXPECT_NE(k % 3, 0u);
    ++count;
  }).ok());
  EXPECT_EQ(count, 66);
}

TEST(LsmScanTest, EmptyRangeAndReversedRange) {
  TempDir dir;
  LsmStore store;
  ASSERT_TRUE(store.Open(SmallLsm(dir)).ok());
  const std::string v = "x";
  Key k = 10;
  ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
  int count = 0;
  ASSERT_TRUE(store.Scan(20, 30, [&](Key, const std::string&) {
    ++count;
  }).ok());
  EXPECT_EQ(count, 0);
  ASSERT_TRUE(store.Scan(30, 20, [&](Key, const std::string&) {
    ++count;
  }).ok());
  EXPECT_EQ(count, 0);
}

TEST(LsmScanTest, OrderedAscending) {
  TempDir dir;
  LsmStore store;
  ASSERT_TRUE(store.Open(SmallLsm(dir)).ok());
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const Key k = rng.Next() % 1000;
    const std::string v = "v";
    ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
  }
  Key prev = 0;
  bool first = true;
  ASSERT_TRUE(store.Scan(0, 999, [&](Key k, const std::string&) {
    if (!first) {
      EXPECT_GT(k, prev);
    }
    prev = k;
    first = false;
  }).ok());
}

// ---------------------------------------------------------- BTree scan --

TEST(BTreeScanTest, FullRangeInOrder) {
  TempDir dir;
  BTreeOptions o;
  o.path = dir.File("bt");
  o.page_size = 4096;
  o.buffer_pool_bytes = 64 * 4096;
  o.value_size = 16;
  BTreeStore store;
  ASSERT_TRUE(store.Open(o).ok());
  // Insert shuffled keys across multiple leaves.
  std::vector<Key> keys;
  for (Key k = 0; k < 2000; ++k) keys.push_back(k * 3);
  Rng rng(5);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Next() % i]);
  }
  std::vector<char> v(o.value_size);
  for (const Key k : keys) {
    std::memcpy(v.data(), &k, sizeof(k));
    ASSERT_TRUE(store.Put(k, v.data()).ok());
  }
  Key expected = 0;
  int count = 0;
  ASSERT_TRUE(store.Scan(0, UINT64_MAX - 1, [&](Key k, const void* value) {
    EXPECT_EQ(k, expected);
    Key stored = 0;
    std::memcpy(&stored, value, sizeof(stored));
    EXPECT_EQ(stored, k);
    expected += 3;
    ++count;
  }).ok());
  EXPECT_EQ(count, 2000);
}

TEST(BTreeScanTest, SubRangeBoundsInclusive) {
  TempDir dir;
  BTreeOptions o;
  o.path = dir.File("bt");
  o.value_size = 8;
  BTreeStore store;
  ASSERT_TRUE(store.Open(o).ok());
  std::vector<char> v(o.value_size, 1);
  for (Key k = 0; k < 500; ++k) {
    ASSERT_TRUE(store.Put(k, v.data()).ok());
  }
  std::vector<Key> got;
  ASSERT_TRUE(store.Scan(100, 110, [&](Key k, const void*) {
    got.push_back(k);
  }).ok());
  ASSERT_EQ(got.size(), 11u);
  EXPECT_EQ(got.front(), 100u);
  EXPECT_EQ(got.back(), 110u);
}

TEST(BTreeScanTest, EmptyTreeAndMissRange) {
  TempDir dir;
  BTreeOptions o;
  o.path = dir.File("bt");
  o.value_size = 8;
  BTreeStore store;
  ASSERT_TRUE(store.Open(o).ok());
  int count = 0;
  ASSERT_TRUE(store.Scan(0, 100, [&](Key, const void*) { ++count; }).ok());
  EXPECT_EQ(count, 0);
  std::vector<char> v(o.value_size, 1);
  Key k = 1000;
  ASSERT_TRUE(store.Put(k, v.data()).ok());
  ASSERT_TRUE(store.Scan(0, 100, [&](Key, const void*) { ++count; }).ok());
  EXPECT_EQ(count, 0);
}

TEST(BTreeScanTest, SparseKeysAcrossLeaves) {
  TempDir dir;
  BTreeOptions o;
  o.path = dir.File("bt");
  o.page_size = 4096;
  o.value_size = 64;  // fewer slots per leaf -> more leaves
  BTreeStore store;
  ASSERT_TRUE(store.Open(o).ok());
  std::vector<char> v(o.value_size, 7);
  std::map<Key, bool> model;
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    const Key k = rng.Next() % 100000;
    ASSERT_TRUE(store.Put(k, v.data()).ok());
    model[k] = true;
  }
  std::vector<Key> got;
  ASSERT_TRUE(store.Scan(20000, 80000, [&](Key k, const void*) {
    got.push_back(k);
  }).ok());
  std::vector<Key> expected;
  for (const auto& [k, _] : model) {
    if (k >= 20000 && k <= 80000) expected.push_back(k);
  }
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace mlkv
