// Durability tests across the engines. For the FASTER path: the group-
// durability crash-recovery matrix (group-committed records replayed past
// the checkpoint marker, torn-tail truncation, base+delta checkpoint
// ordering, injected fsync failures surfacing as errors) and the tailable
// update-log cursor. For the baseline engines: WAL record format, crash
// recovery (including fault injection on the WAL tail), LEVELS manifest
// recovery, and range scans on the LSM store and the B+tree.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree_store.h"
#include "common/random.h"
#include "io/faulty_file_device.h"
#include "io/temp_dir.h"
#include "kv/faster_store.h"
#include "kv/update_log.h"
#include "lsm/lsm_store.h"
#include "lsm/wal.h"

namespace mlkv {
namespace {

LsmOptions SmallLsm(const TempDir& dir) {
  LsmOptions o;
  o.dir = dir.path() + "/lsm";
  o.memtable_bytes = 4096;
  o.block_cache_bytes = 1 << 20;
  o.block_size = 1024;
  o.l0_compaction_trigger = 3;
  return o;
}

// ------------------------------------------------------------------ WAL --

TEST(WalTest, EmptyFileReplaysNothing) {
  TempDir dir;
  uint64_t n = 99;
  ASSERT_TRUE(ReplayWal(dir.File("missing.wal"),
                        [](Key, const std::string&, bool) { FAIL(); }, &n)
                  .ok());
  EXPECT_EQ(n, 0u);
}

TEST(WalTest, RoundTripsPutsAndDeletes) {
  TempDir dir;
  const std::string path = dir.File("w.wal");
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    ASSERT_TRUE(w.AppendPut(1, "alpha", 5).ok());
    ASSERT_TRUE(w.AppendDelete(2).ok());
    ASSERT_TRUE(w.AppendPut(3, "b", 1).ok());
    ASSERT_TRUE(w.Sync().ok());
  }
  std::vector<std::tuple<Key, std::string, bool>> got;
  uint64_t n = 0;
  ASSERT_TRUE(ReplayWal(path,
                        [&](Key k, const std::string& v, bool tomb) {
                          got.emplace_back(k, v, tomb);
                        },
                        &n)
                  .ok());
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(got[0], std::make_tuple(Key{1}, std::string("alpha"), false));
  EXPECT_EQ(got[1], std::make_tuple(Key{2}, std::string(), true));
  EXPECT_EQ(got[2], std::make_tuple(Key{3}, std::string("b"), false));
}

TEST(WalTest, ResetEmptiesTheLog) {
  TempDir dir;
  const std::string path = dir.File("w.wal");
  WalWriter w;
  ASSERT_TRUE(w.Open(path).ok());
  ASSERT_TRUE(w.AppendPut(1, "x", 1).ok());
  ASSERT_TRUE(w.Reset().ok());
  EXPECT_EQ(w.bytes(), 0u);
  uint64_t n = 0;
  ASSERT_TRUE(
      ReplayWal(path, [](Key, const std::string&, bool) {}, &n).ok());
  EXPECT_EQ(n, 0u);
}

TEST(WalTest, TornTailStopsReplayCleanly) {
  TempDir dir;
  const std::string path = dir.File("w.wal");
  uint64_t full_size = 0;
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    ASSERT_TRUE(w.AppendPut(1, "aaaa", 4).ok());
    ASSERT_TRUE(w.AppendPut(2, "bbbb", 4).ok());
    ASSERT_TRUE(w.Sync().ok());
    full_size = w.bytes();
  }
  // Chop the last record in half (simulated crash mid-write).
  std::filesystem::resize_file(path, full_size - 3);
  uint64_t n = 0;
  std::vector<Key> keys;
  ASSERT_TRUE(ReplayWal(path,
                        [&](Key k, const std::string&, bool) {
                          keys.push_back(k);
                        },
                        &n)
                  .ok());
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(keys[0], 1u);
}

TEST(WalTest, CorruptMiddleByteStopsAtTheRecord) {
  TempDir dir;
  const std::string path = dir.File("w.wal");
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    ASSERT_TRUE(w.AppendPut(1, "aaaa", 4).ok());
    ASSERT_TRUE(w.AppendPut(2, "bbbb", 4).ok());
    ASSERT_TRUE(w.AppendPut(3, "cccc", 4).ok());
  }
  // Flip a byte inside record 2's value.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(21 + 18, std::ios::beg);  // record size = 17 + 4 = 21 bytes
  f.put('X');
  f.close();
  uint64_t n = 0;
  ASSERT_TRUE(
      ReplayWal(path, [](Key, const std::string&, bool) {}, &n).ok());
  EXPECT_EQ(n, 1u);  // only the first record survives
}

// -------------------------------------------------------- LSM recovery --

TEST(LsmRecoveryTest, RecoversFlushedAndUnflushedWrites) {
  TempDir dir;
  const LsmOptions o = SmallLsm(dir);
  std::map<Key, std::string> model;
  {
    LsmStore store;
    ASSERT_TRUE(store.Open(o).ok());
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
      const Key k = rng.Next() % 200;
      const std::string v = "v" + std::to_string(i);
      ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
      model[k] = v;
    }
    // Deliberately NO Flush(): the tail lives only in the WAL.
  }
  LsmStore recovered;
  ASSERT_TRUE(recovered.Open(o).ok());
  for (const auto& [k, v] : model) {
    std::string out;
    ASSERT_TRUE(recovered.Get(k, &out).ok()) << "key " << k;
    EXPECT_EQ(out, v);
  }
}

TEST(LsmRecoveryTest, RecoversDeletes) {
  TempDir dir;
  const LsmOptions o = SmallLsm(dir);
  {
    LsmStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (Key k = 0; k < 50; ++k) {
      const std::string v = "v" + std::to_string(k);
      ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
    }
    for (Key k = 0; k < 50; k += 2) ASSERT_TRUE(store.Delete(k).ok());
  }
  LsmStore recovered;
  ASSERT_TRUE(recovered.Open(o).ok());
  for (Key k = 0; k < 50; ++k) {
    std::string out;
    if (k % 2 == 0) {
      EXPECT_TRUE(recovered.Get(k, &out).IsNotFound()) << "key " << k;
    } else {
      ASSERT_TRUE(recovered.Get(k, &out).ok()) << "key " << k;
    }
  }
}

TEST(LsmRecoveryTest, SurvivesTornWalTail) {
  TempDir dir;
  const LsmOptions o = SmallLsm(dir);
  {
    LsmStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (Key k = 0; k < 20; ++k) {
      const std::string v = "value" + std::to_string(k);
      ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
    }
  }
  // Crash injection: chop bytes off the WAL tail.
  const std::string wal = o.dir + "/WAL";
  ASSERT_TRUE(std::filesystem::exists(wal));
  const auto size = std::filesystem::file_size(wal);
  ASSERT_GT(size, 4u);
  std::filesystem::resize_file(wal, size - 4);
  LsmStore recovered;
  ASSERT_TRUE(recovered.Open(o).ok());
  // Everything except (at most) the torn-off tail record must be intact.
  for (Key k = 0; k + 1 < 20; ++k) {
    std::string out;
    ASSERT_TRUE(recovered.Get(k, &out).ok()) << "key " << k;
    EXPECT_EQ(out, "value" + std::to_string(k));
  }
}

TEST(LsmRecoveryTest, DoubleRecoveryIsStable) {
  TempDir dir;
  const LsmOptions o = SmallLsm(dir);
  {
    LsmStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (Key k = 0; k < 300; ++k) {
      const std::string v = "v" + std::to_string(k);
      ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
    }
  }
  {
    LsmStore once;
    ASSERT_TRUE(once.Open(o).ok());
    const std::string v = "extra";
    Key k = 1000;
    ASSERT_TRUE(once.Put(k, v.data(), v.size()).ok());
  }
  LsmStore twice;
  ASSERT_TRUE(twice.Open(o).ok());
  std::string out;
  for (Key k = 0; k < 300; ++k) {
    ASSERT_TRUE(twice.Get(k, &out).ok()) << "key " << k;
  }
  ASSERT_TRUE(twice.Get(1000, &out).ok());
  EXPECT_EQ(out, "extra");
}

TEST(LsmRecoveryTest, WalDisabledLosesOnlyMemtable) {
  TempDir dir;
  LsmOptions o = SmallLsm(dir);
  o.enable_wal = false;
  {
    LsmStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (Key k = 0; k < 300; ++k) {
      const std::string v = "v" + std::to_string(k);
      ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
    }
    ASSERT_TRUE(store.Flush().ok());
    // Unflushed write that will be lost without a WAL.
    const std::string v = "lost";
    Key k = 5000;
    ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
  }
  LsmStore recovered;
  ASSERT_TRUE(recovered.Open(o).ok());
  std::string out;
  for (Key k = 0; k < 300; ++k) {
    ASSERT_TRUE(recovered.Get(k, &out).ok()) << "key " << k;
  }
  EXPECT_TRUE(recovered.Get(5000, &out).IsNotFound());
}

// ------------------------------------------------------------ LSM scan --

TEST(LsmScanTest, MergesAllLevelsNewestWins) {
  TempDir dir;
  LsmStore store;
  ASSERT_TRUE(store.Open(SmallLsm(dir)).ok());
  // Enough writes to populate L1 (via compaction), L0, and the memtable,
  // with overlapping key versions.
  for (int round = 0; round < 6; ++round) {
    for (Key k = 0; k < 120; ++k) {
      const std::string v = "r" + std::to_string(round) + "k" +
                            std::to_string(k);
      ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
    }
  }
  ASSERT_GT(store.l1_run_count() + store.l0_run_count(), 0u);
  std::map<Key, std::string> got;
  ASSERT_TRUE(store.Scan(10, 50, [&](Key k, const std::string& v) {
    got[k] = v;
  }).ok());
  ASSERT_EQ(got.size(), 41u);
  for (Key k = 10; k <= 50; ++k) {
    EXPECT_EQ(got[k], "r5k" + std::to_string(k)) << "key " << k;
  }
}

TEST(LsmScanTest, SkipsDeletedKeys) {
  TempDir dir;
  LsmStore store;
  ASSERT_TRUE(store.Open(SmallLsm(dir)).ok());
  for (Key k = 0; k < 100; ++k) {
    const std::string v = "v" + std::to_string(k);
    ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
  }
  for (Key k = 0; k < 100; k += 3) ASSERT_TRUE(store.Delete(k).ok());
  int count = 0;
  ASSERT_TRUE(store.Scan(0, 99, [&](Key k, const std::string&) {
    EXPECT_NE(k % 3, 0u);
    ++count;
  }).ok());
  EXPECT_EQ(count, 66);
}

TEST(LsmScanTest, EmptyRangeAndReversedRange) {
  TempDir dir;
  LsmStore store;
  ASSERT_TRUE(store.Open(SmallLsm(dir)).ok());
  const std::string v = "x";
  Key k = 10;
  ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
  int count = 0;
  ASSERT_TRUE(store.Scan(20, 30, [&](Key, const std::string&) {
    ++count;
  }).ok());
  EXPECT_EQ(count, 0);
  ASSERT_TRUE(store.Scan(30, 20, [&](Key, const std::string&) {
    ++count;
  }).ok());
  EXPECT_EQ(count, 0);
}

TEST(LsmScanTest, OrderedAscending) {
  TempDir dir;
  LsmStore store;
  ASSERT_TRUE(store.Open(SmallLsm(dir)).ok());
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const Key k = rng.Next() % 1000;
    const std::string v = "v";
    ASSERT_TRUE(store.Put(k, v.data(), v.size()).ok());
  }
  Key prev = 0;
  bool first = true;
  ASSERT_TRUE(store.Scan(0, 999, [&](Key k, const std::string&) {
    if (!first) {
      EXPECT_GT(k, prev);
    }
    prev = k;
    first = false;
  }).ok());
}

// ---------------------------------------------------------- BTree scan --

TEST(BTreeScanTest, FullRangeInOrder) {
  TempDir dir;
  BTreeOptions o;
  o.path = dir.File("bt");
  o.page_size = 4096;
  o.buffer_pool_bytes = 64 * 4096;
  o.value_size = 16;
  BTreeStore store;
  ASSERT_TRUE(store.Open(o).ok());
  // Insert shuffled keys across multiple leaves.
  std::vector<Key> keys;
  for (Key k = 0; k < 2000; ++k) keys.push_back(k * 3);
  Rng rng(5);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Next() % i]);
  }
  std::vector<char> v(o.value_size);
  for (const Key k : keys) {
    std::memcpy(v.data(), &k, sizeof(k));
    ASSERT_TRUE(store.Put(k, v.data()).ok());
  }
  Key expected = 0;
  int count = 0;
  ASSERT_TRUE(store.Scan(0, UINT64_MAX - 1, [&](Key k, const void* value) {
    EXPECT_EQ(k, expected);
    Key stored = 0;
    std::memcpy(&stored, value, sizeof(stored));
    EXPECT_EQ(stored, k);
    expected += 3;
    ++count;
  }).ok());
  EXPECT_EQ(count, 2000);
}

TEST(BTreeScanTest, SubRangeBoundsInclusive) {
  TempDir dir;
  BTreeOptions o;
  o.path = dir.File("bt");
  o.value_size = 8;
  BTreeStore store;
  ASSERT_TRUE(store.Open(o).ok());
  std::vector<char> v(o.value_size, 1);
  for (Key k = 0; k < 500; ++k) {
    ASSERT_TRUE(store.Put(k, v.data()).ok());
  }
  std::vector<Key> got;
  ASSERT_TRUE(store.Scan(100, 110, [&](Key k, const void*) {
    got.push_back(k);
  }).ok());
  ASSERT_EQ(got.size(), 11u);
  EXPECT_EQ(got.front(), 100u);
  EXPECT_EQ(got.back(), 110u);
}

TEST(BTreeScanTest, EmptyTreeAndMissRange) {
  TempDir dir;
  BTreeOptions o;
  o.path = dir.File("bt");
  o.value_size = 8;
  BTreeStore store;
  ASSERT_TRUE(store.Open(o).ok());
  int count = 0;
  ASSERT_TRUE(store.Scan(0, 100, [&](Key, const void*) { ++count; }).ok());
  EXPECT_EQ(count, 0);
  std::vector<char> v(o.value_size, 1);
  Key k = 1000;
  ASSERT_TRUE(store.Put(k, v.data()).ok());
  ASSERT_TRUE(store.Scan(0, 100, [&](Key, const void*) { ++count; }).ok());
  EXPECT_EQ(count, 0);
}

TEST(BTreeScanTest, SparseKeysAcrossLeaves) {
  TempDir dir;
  BTreeOptions o;
  o.path = dir.File("bt");
  o.page_size = 4096;
  o.value_size = 64;  // fewer slots per leaf -> more leaves
  BTreeStore store;
  ASSERT_TRUE(store.Open(o).ok());
  std::vector<char> v(o.value_size, 7);
  std::map<Key, bool> model;
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    const Key k = rng.Next() % 100000;
    ASSERT_TRUE(store.Put(k, v.data()).ok());
    model[k] = true;
  }
  std::vector<Key> got;
  ASSERT_TRUE(store.Scan(20000, 80000, [&](Key k, const void*) {
    got.push_back(k);
  }).ok());
  std::vector<Key> expected;
  for (const auto& [k, _] : model) {
    if (k >= 20000 && k <= 80000) expected.push_back(k);
  }
  EXPECT_EQ(got, expected);
}

// ------------------------------------- FASTER group-durability matrix --
//
// The crash model throughout: a "crash" is closing the store without the
// shutdown-time checkpoint (everything not on media is gone), optionally
// followed by tearing the log file the way an interrupted page write
// would. Recovery is Recover() from the last checkpoint prefix.

FasterOptions GroupStore(const TempDir& dir, const char* name = "kv.log") {
  FasterOptions o;
  o.path = dir.File(name);
  o.index_slots = 1024;
  o.page_size = 4096;
  o.mem_size = 16 * 4096;
  o.mutable_fraction = 0.5;
  o.durability_mode = DurabilityMode::kGroup;
  o.group_commit_window_us = 100;
  return o;
}

Status UpsertStr(FasterStore* store, Key k, const std::string& v) {
  return store->Upsert(k, v.data(), static_cast<uint32_t>(v.size()));
}

// Kill between group commit and checkpoint marker: work made durable by
// Persist() but never covered by a checkpoint must be replayed from the
// log tail on recovery — new inserts, RCU updates, and tombstones alike.
TEST(GroupDurabilityTest, GroupCommittedRecordsReplayPastCheckpoint) {
  TempDir dir;
  const FasterOptions o = GroupStore(dir);
  const std::string prefix = dir.File("ckpt");
  {
    FasterStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (Key k = 1; k <= 20; ++k) {
      ASSERT_TRUE(UpsertStr(&store, k, "base-" + std::to_string(k)).ok());
    }
    ASSERT_TRUE(store.Checkpoint(prefix).ok());
    // Post-checkpoint: new keys plus size-changing (RCU) updates of old
    // ones, then one group-committed durability point — and a crash
    // before any further checkpoint marker.
    for (Key k = 21; k <= 40; ++k) {
      ASSERT_TRUE(UpsertStr(&store, k, "tail-" + std::to_string(k)).ok());
    }
    for (Key k = 1; k <= 10; ++k) {
      ASSERT_TRUE(
          UpsertStr(&store, k, "updated!!-" + std::to_string(k)).ok());
    }
    ASSERT_TRUE(store.Delete(15).ok());
    ASSERT_TRUE(store.Persist().ok());
  }

  FasterStore store;
  ASSERT_TRUE(store.Recover(o, prefix).ok());
  std::string out;
  for (Key k = 1; k <= 10; ++k) {
    ASSERT_TRUE(store.Read(k, &out).ok()) << k;
    EXPECT_EQ(out, "updated!!-" + std::to_string(k));
  }
  for (Key k = 11; k <= 14; ++k) {
    ASSERT_TRUE(store.Read(k, &out).ok()) << k;
    EXPECT_EQ(out, "base-" + std::to_string(k));
  }
  EXPECT_TRUE(store.Read(15, &out).IsNotFound());  // tombstone replayed
  for (Key k = 21; k <= 40; ++k) {
    ASSERT_TRUE(store.Read(k, &out).ok()) << k;
    EXPECT_EQ(out, "tail-" + std::to_string(k));
  }
}

// The sync-mode contract, for contrast: without kGroup the checkpoint is
// the only durability marker, so flushed-but-unmarked tail records are
// deliberately NOT replayed (classic FASTER semantics, byte-identical
// write path).
TEST(GroupDurabilityTest, SyncModeRecoveryStopsAtCheckpoint) {
  TempDir dir;
  FasterOptions o = GroupStore(dir);
  o.durability_mode = DurabilityMode::kSync;
  const std::string prefix = dir.File("ckpt");
  {
    FasterStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (Key k = 1; k <= 10; ++k) {
      ASSERT_TRUE(UpsertStr(&store, k, "base-" + std::to_string(k)).ok());
    }
    ASSERT_TRUE(store.Checkpoint(prefix).ok());
    for (Key k = 11; k <= 20; ++k) {
      ASSERT_TRUE(UpsertStr(&store, k, "tail-" + std::to_string(k)).ok());
    }
    ASSERT_TRUE(store.mutable_log()->FlushAll().ok());  // on media, unmarked
  }
  FasterStore store;
  ASSERT_TRUE(store.Recover(o, prefix).ok());
  std::string out;
  for (Key k = 1; k <= 10; ++k) {
    ASSERT_TRUE(store.Read(k, &out).ok()) << k;
  }
  for (Key k = 11; k <= 20; ++k) {
    EXPECT_TRUE(store.Read(k, &out).IsNotFound()) << k;
  }
}

// A crash that tears the last record mid-header: the tail scan must stop
// at the tear, recovery must truncate the torn bytes off the file, and
// every group-committed record before the tear must survive.
TEST(GroupDurabilityTest, TornTailIsTruncatedOnRecovery) {
  TempDir dir;
  const FasterOptions o = GroupStore(dir);
  const std::string prefix = dir.File("ckpt");
  Address tear = 0;
  {
    FasterStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (Key k = 1; k <= 12; ++k) {
      ASSERT_TRUE(UpsertStr(&store, k, "base-" + std::to_string(k)).ok());
    }
    ASSERT_TRUE(store.Checkpoint(prefix).ok());
    for (Key k = 13; k <= 24; ++k) {
      ASSERT_TRUE(UpsertStr(&store, k, "post-" + std::to_string(k)).ok());
    }
    tear = store.mutable_log()->tail();
    ASSERT_TRUE(UpsertStr(&store, 99, "torn-victim-value").ok());
    ASSERT_TRUE(store.Persist().ok());
  }
  // Only the first 8 bytes of the victim's header reached media.
  std::filesystem::resize_file(o.path, tear + 8);

  FasterStore store;
  ASSERT_TRUE(store.Recover(o, prefix).ok());
  std::string out;
  for (Key k = 13; k <= 24; ++k) {
    ASSERT_TRUE(store.Read(k, &out).ok()) << k;
    EXPECT_EQ(out, "post-" + std::to_string(k));
  }
  EXPECT_TRUE(store.Read(99, &out).IsNotFound());
  // The torn bytes are gone from disk — stale fragments can never
  // resurface as valid records in a later scan.
  EXPECT_LE(std::filesystem::file_size(o.path), tear);
  // And the recovered store keeps working past the truncation point.
  ASSERT_TRUE(UpsertStr(&store, 100, "after-recovery").ok());
  ASSERT_TRUE(store.Persist().ok());
  ASSERT_TRUE(store.Read(100, &out).ok());
  EXPECT_EQ(out, "after-recovery");
}

// Base + delta replay ordering: three incremental checkpoints under one
// prefix (base, d1, d2) with overlapping key updates; recovery must apply
// the chain in order so the newest generation wins everywhere.
TEST(IncrementalCheckpointTest, BaseAndDeltasReplayInOrder) {
  TempDir dir;
  FasterOptions o = GroupStore(dir);
  o.durability_mode = DurabilityMode::kSync;  // isolate from tail replay
  o.checkpoint_mode = CheckpointMode::kIncremental;
  const std::string prefix = dir.File("inc");
  {
    FasterStore store;
    ASSERT_TRUE(store.Open(o).ok());
    for (Key k = 1; k <= 30; ++k) {
      ASSERT_TRUE(UpsertStr(&store, k, "gen0-" + std::to_string(k)).ok());
    }
    ASSERT_TRUE(store.Checkpoint(prefix).ok());  // base
    for (Key k = 1; k <= 10; ++k) {
      ASSERT_TRUE(UpsertStr(&store, k, "gen1!!-" + std::to_string(k)).ok());
    }
    for (Key k = 31; k <= 40; ++k) {
      ASSERT_TRUE(UpsertStr(&store, k, "gen1-" + std::to_string(k)).ok());
    }
    ASSERT_TRUE(store.Checkpoint(prefix).ok());  // delta 1
    for (Key k = 1; k <= 5; ++k) {
      ASSERT_TRUE(
          UpsertStr(&store, k, "gen2####-" + std::to_string(k)).ok());
    }
    ASSERT_TRUE(store.Delete(10).ok());
    ASSERT_TRUE(store.Checkpoint(prefix).ok());  // delta 2
  }
  ASSERT_TRUE(std::filesystem::exists(prefix + ".idx"));
  ASSERT_TRUE(std::filesystem::exists(prefix + ".idx.d1"));
  ASSERT_TRUE(std::filesystem::exists(prefix + ".idx.d2"));
  // A delta names only the slots whose chain head moved — a small
  // fraction of the full index dump.
  EXPECT_LT(std::filesystem::file_size(prefix + ".idx.d1"),
            std::filesystem::file_size(prefix + ".idx") / 4);

  FasterStore store;
  ASSERT_TRUE(store.Recover(o, prefix).ok());
  std::string out;
  for (Key k = 1; k <= 5; ++k) {
    ASSERT_TRUE(store.Read(k, &out).ok()) << k;
    EXPECT_EQ(out, "gen2####-" + std::to_string(k));
  }
  for (Key k = 6; k <= 9; ++k) {
    ASSERT_TRUE(store.Read(k, &out).ok()) << k;
    EXPECT_EQ(out, "gen1!!-" + std::to_string(k));
  }
  EXPECT_TRUE(store.Read(10, &out).IsNotFound());
  for (Key k = 11; k <= 30; ++k) {
    ASSERT_TRUE(store.Read(k, &out).ok()) << k;
    EXPECT_EQ(out, "gen0-" + std::to_string(k));
  }
  for (Key k = 31; k <= 40; ++k) {
    ASSERT_TRUE(store.Read(k, &out).ok()) << k;
    EXPECT_EQ(out, "gen1-" + std::to_string(k));
  }
}

// An fsync that reports failure must surface as the checkpoint's status —
// and must not leave a checkpoint marker behind.
TEST(FsyncFaultTest, CheckpointSurfacesInjectedFsyncFailure) {
  TempDir dir;
  auto script = std::make_shared<FaultyFileDevice::Script>();
  FasterOptions o = GroupStore(dir);
  o.durability_mode = DurabilityMode::kSync;
  o.device_factory = [script] {
    return std::make_unique<FaultyFileDevice>(script);
  };
  FasterStore store;
  ASSERT_TRUE(store.Open(o).ok());
  for (Key k = 1; k <= 8; ++k) {
    ASSERT_TRUE(UpsertStr(&store, k, "v-" + std::to_string(k)).ok());
  }
  ASSERT_TRUE(store.Checkpoint(dir.File("good")).ok());

  script->sync_fail_from.store(script->syncs.load() + 1);
  script->sync_fail_count.store(1);
  const Status s = store.Checkpoint(dir.File("bad"));
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_FALSE(std::filesystem::exists(dir.File("bad") + ".meta"));
  // The device recovered (window of one), so the next checkpoint works.
  ASSERT_TRUE(store.Checkpoint(dir.File("good2")).ok());
}

// The GroupCommitter's error model: a failed fsync is sticky. Even after
// the device "heals", later Persist calls keep failing — after an fsync
// error the kernel may have dropped dirty pages, so durability can never
// again be proven on this device.
TEST(FsyncFaultTest, GroupPersistFailureIsSticky) {
  TempDir dir;
  auto script = std::make_shared<FaultyFileDevice::Script>();
  FasterOptions o = GroupStore(dir);
  o.device_factory = [script] {
    return std::make_unique<FaultyFileDevice>(script);
  };
  FasterStore store;
  ASSERT_TRUE(store.Open(o).ok());
  ASSERT_TRUE(UpsertStr(&store, 1, "hello").ok());

  script->sync_fail_from.store(1);
  script->sync_fail_count.store(UINT64_MAX);  // every sync from now on
  EXPECT_FALSE(store.Persist().ok());
  script->sync_fail_from.store(0);  // disarm: device is "healthy" again
  ASSERT_TRUE(UpsertStr(&store, 2, "world").ok());
  EXPECT_FALSE(store.Persist().ok());  // sticky: the loss already happened
}

// --------------------------------------------------- tailable update log --

// The cursor yields exactly the committed prefix: entries appear in log
// order, never above the durable watermark, and the stream resumes after
// each later durability point.
TEST(UpdateLogTest, CursorYieldsCommittedUpdatesInOrder) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(GroupStore(dir)).ok());
  const Key keys[] = {11, 22, 33};
  for (const Key k : keys) {
    ASSERT_TRUE(UpsertStr(&store, k, "v-" + std::to_string(k)).ok());
  }

  UpdateLogCursor cur(&store, 0);
  UpdateEntry e;
  EXPECT_FALSE(cur.Next(&e));  // nothing durable yet
  EXPECT_TRUE(cur.status().ok());

  ASSERT_TRUE(store.Persist().ok());
  for (const Key k : keys) {
    ASSERT_TRUE(cur.Next(&e));
    EXPECT_EQ(e.key, k);
    EXPECT_FALSE(e.tombstone);
    const std::string want = "v-" + std::to_string(k);
    EXPECT_EQ(std::string(e.value.begin(), e.value.end()), want);
  }
  EXPECT_FALSE(cur.Next(&e));  // caught up
  EXPECT_TRUE(cur.status().ok());

  ASSERT_TRUE(UpsertStr(&store, 44, "late").ok());
  EXPECT_FALSE(cur.Next(&e));  // still above the watermark
  ASSERT_TRUE(store.Persist().ok());
  ASSERT_TRUE(cur.Next(&e));
  EXPECT_EQ(e.key, 44u);
  EXPECT_FALSE(cur.Next(&e));
}

// position() is a durable resume token: a fresh cursor started there
// continues the stream with no gaps or repeats.
TEST(UpdateLogTest, CursorResumesFromPosition) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(GroupStore(dir)).ok());
  for (Key k = 1; k <= 5; ++k) {
    ASSERT_TRUE(UpsertStr(&store, k, "v-" + std::to_string(k)).ok());
  }
  ASSERT_TRUE(store.Persist().ok());

  UpdateLogCursor a(&store, 0);
  UpdateEntry e;
  ASSERT_TRUE(a.Next(&e));
  ASSERT_TRUE(a.Next(&e));
  const Address resume = a.position();

  UpdateLogCursor b(&store, resume);
  for (Key k = 3; k <= 5; ++k) {
    ASSERT_TRUE(b.Next(&e));
    EXPECT_EQ(e.key, k);
  }
  EXPECT_FALSE(b.Next(&e));
  EXPECT_TRUE(b.status().ok());
}

// Deletes appear in the feed as tombstone entries with an empty value.
TEST(UpdateLogTest, TombstonesAppearWithEmptyValue) {
  TempDir dir;
  FasterStore store;
  ASSERT_TRUE(store.Open(GroupStore(dir)).ok());
  ASSERT_TRUE(UpsertStr(&store, 7, "hello").ok());
  ASSERT_TRUE(store.Delete(7).ok());
  ASSERT_TRUE(store.Persist().ok());

  UpdateLogCursor cur(&store, 0);
  UpdateEntry e;
  ASSERT_TRUE(cur.Next(&e));
  EXPECT_EQ(e.key, 7u);
  EXPECT_FALSE(e.tombstone);
  ASSERT_TRUE(cur.Next(&e));
  EXPECT_EQ(e.key, 7u);
  EXPECT_TRUE(e.tombstone);
  EXPECT_TRUE(e.value.empty());
  EXPECT_FALSE(cur.Next(&e));
}

// A cursor that lags behind compaction gets Corruption, not silent
// garbage: its position names log addresses that no longer exist.
TEST(UpdateLogTest, CompactedAwayPositionReportsCorruption) {
  TempDir dir;
  FasterOptions o = GroupStore(dir);
  o.durability_mode = DurabilityMode::kSync;
  o.mem_size = 8 * 4096;
  FasterStore store;
  ASSERT_TRUE(store.Open(o).ok());
  // Alternate value sizes so every overwrite is an RCU append (garbage
  // below), until the read-only boundary has moved off the log start.
  for (int round = 0; round < 200; ++round) {
    const std::string v(round % 2 == 0 ? 40 : 72, 'x');
    for (Key k = 0; k < 64; ++k) {
      ASSERT_TRUE(UpsertStr(&store, k, v).ok());
    }
    if (store.log().read_only_address() > HybridLog::kLogBegin) break;
  }
  ASSERT_GT(store.log().read_only_address(), HybridLog::kLogBegin);
  CompactionResult cr;
  ASSERT_TRUE(store.Compact(store.log().read_only_address(), &cr).ok());
  ASSERT_GT(store.log().begin_address(), HybridLog::kLogBegin);

  UpdateLogCursor cur(&store, HybridLog::kLogBegin);
  UpdateEntry e;
  EXPECT_FALSE(cur.Next(&e));
  EXPECT_TRUE(cur.status().IsCorruption());
}

}  // namespace
}  // namespace mlkv
