// Parameterized conformance suite: every backend behind the KvBackend seam
// must satisfy the same embedding-store contract (the reusability property
// of Table I — swapping engines must not change application semantics).
// The suite runs each engine in-process and — for MLKV and FASTER — behind
// a loopback KvServer through RemoteBackend, and across a 2-server
// loopback cluster through ClusterBackend, so both network boundaries are
// held to the exact same contract as a linked engine.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "backend/kv_backend.h"
#include "cluster/cluster_map.h"
#include "common/hash.h"
#include "common/random.h"
#include "io/temp_dir.h"
#include "net/kv_server.h"
#include "net/remote_backend.h"

namespace mlkv {
namespace {

const char* KindNameOf(BackendKind kind) {
  switch (kind) {
    case BackendKind::kMlkv: return "Mlkv";
    case BackendKind::kFaster: return "Faster";
    case BackendKind::kLsm: return "Lsm";
    case BackendKind::kBtree: return "Btree";
    case BackendKind::kInMemory: return "InMemory";
    case BackendKind::kRemote: return "Remote";
    case BackendKind::kCluster: return "Cluster";
  }
  return "Unknown";
}

// How the engine is reached: linked in-process, behind one loopback
// KvServer, or scattered across a 2-server loopback cluster.
enum class Via { kInProcess, kRemote, kCluster };

using ConformanceParam = std::tuple<BackendKind, Via>;

class BackendConformanceTest
    : public ::testing::TestWithParam<ConformanceParam> {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>();
    BackendConfig cfg;
    cfg.dir = dir_->File("backend");
    cfg.dim = 8;
    cfg.buffer_bytes = 4ull << 20;
    cfg.staleness_bound = kHugeBound;
    const Via via = std::get<1>(GetParam());
    if (via == Via::kInProcess) {
      ASSERT_TRUE(MakeBackend(std::get<0>(GetParam()), cfg, &backend_).ok());
      return;
    }
    net::KvServerOptions so;
    so.num_workers = 6;  // >= max pooled client sockets any case below uses
    if (via == Via::kRemote) {
      // Remote variant: same engine, served over an in-process loopback
      // KvServer, with the test talking to it through BackendKind::kRemote.
      std::unique_ptr<KvBackend> engine;
      ASSERT_TRUE(MakeBackend(std::get<0>(GetParam()), cfg, &engine).ok());
      servers_.push_back(
          std::make_unique<net::KvServer>(std::move(engine), so));
      ASSERT_TRUE(servers_[0]->Start().ok());
      BackendConfig rcfg;
      rcfg.remote_addr = servers_[0]->addr();
      ASSERT_TRUE(MakeBackend(BackendKind::kRemote, rcfg, &backend_).ok());
      return;
    }
    // Cluster variant: two loopback KvServers, each owning its own engine
    // instance, with a route_bits=1 map installed after Start (the
    // ephemeral ports are only known then) and the test talking to them
    // through BackendKind::kCluster.
    cfg.shard_bits = 1;
    for (int s = 0; s < 2; ++s) {
      cfg.dir = dir_->File("backend" + std::to_string(s));
      std::unique_ptr<KvBackend> engine;
      ASSERT_TRUE(MakeBackend(std::get<0>(GetParam()), cfg, &engine).ok());
      servers_.push_back(
          std::make_unique<net::KvServer>(std::move(engine), so));
      ASSERT_TRUE(servers_[s]->Start().ok());
    }
    auto map = std::make_shared<cluster::ClusterMap>();
    ASSERT_TRUE(cluster::BuildClusterMap(
                    {servers_[0]->addr(), servers_[1]->addr()}, {},
                    /*route_bits=*/1, cluster::ReadPreference::kPrimary,
                    /*epoch=*/1, map.get())
                    .ok());
    for (uint32_t s = 0; s < 2; ++s) servers_[s]->UpdateClusterMap(map, s);
    BackendConfig ccfg;
    ccfg.cluster_addrs = servers_[0]->addr() + "," + servers_[1]->addr();
    ASSERT_TRUE(MakeBackend(BackendKind::kCluster, ccfg, &backend_).ok());
  }

  void TearDown() override {
    backend_.reset();  // client sockets close before the servers stop
    for (auto& s : servers_) s->Stop();
  }

  static constexpr uint32_t kHugeBound = UINT32_MAX - 1;
  std::unique_ptr<TempDir> dir_;
  std::vector<std::unique_ptr<net::KvServer>> servers_;
  std::unique_ptr<KvBackend> backend_;
};

TEST_P(BackendConformanceTest, GetInitializesDeterministically) {
  std::vector<float> a(8), b(8);
  ASSERT_TRUE(backend_->GetEmbedding(42, a.data()).ok());
  ASSERT_TRUE(backend_->GetEmbedding(42, b.data()).ok());
  EXPECT_EQ(a, b);
  // Init scale bound: |v| <= 1/sqrt(dim).
  for (float v : a) EXPECT_LE(std::fabs(v), 1.0f / std::sqrt(8.0f) + 1e-6f);
}

TEST_P(BackendConformanceTest, InitIsBackendIndependent) {
  // All backends share the init derivation, so convergence comparisons
  // start from identical embeddings.
  std::vector<float> v(8);
  ASSERT_TRUE(backend_->GetEmbedding(7, v.data()).ok());
  Rng rng(Hash64(Key{7} ^ 0xE5B0C47Aull));
  const float scale = 1.0f / std::sqrt(8.0f);
  for (int d = 0; d < 8; ++d) {
    EXPECT_FLOAT_EQ(v[d],
                    static_cast<float>(rng.NextDouble() * 2.0 - 1.0) * scale);
  }
}

TEST_P(BackendConformanceTest, PutThenGetRoundTrips) {
  std::vector<float> v = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(backend_->PutEmbedding(1, v.data()).ok());
  std::vector<float> out(8);
  ASSERT_TRUE(backend_->GetEmbedding(1, out.data()).ok());
  EXPECT_EQ(v, out);
}

TEST_P(BackendConformanceTest, PeekMatchesGet) {
  std::vector<float> v = {8, 7, 6, 5, 4, 3, 2, 1};
  ASSERT_TRUE(backend_->PutEmbedding(2, v.data()).ok());
  std::vector<float> out(8);
  ASSERT_TRUE(backend_->PeekEmbedding(2, out.data()).ok());
  EXPECT_EQ(v, out);
}

TEST_P(BackendConformanceTest, ManyKeysLargerThanBuffer) {
  // 40k keys x 32B values exceed small internal buffers for the disk
  // backends; all must still round-trip.
  std::vector<float> v(8), out(8);
  for (Key k = 0; k < 5000; ++k) {
    for (int d = 0; d < 8; ++d) v[d] = static_cast<float>(k + d);
    ASSERT_TRUE(backend_->PutEmbedding(k, v.data()).ok()) << k;
  }
  for (Key k = 0; k < 5000; k += 37) {
    ASSERT_TRUE(backend_->GetEmbedding(k, out.data()).ok()) << k;
    for (int d = 0; d < 8; ++d) EXPECT_FLOAT_EQ(out[d], k + d) << k;
  }
}

TEST_P(BackendConformanceTest, LookaheadIsHarmless) {
  std::vector<float> v = {1, 1, 2, 3, 5, 8, 13, 21};
  ASSERT_TRUE(backend_->PutEmbedding(5, v.data()).ok());
  std::vector<Key> keys = {5, 6, 7};
  ASSERT_TRUE(backend_->Lookahead(keys).ok());
  backend_->WaitIdle();
  std::vector<float> out(8);
  ASSERT_TRUE(backend_->GetEmbedding(5, out.data()).ok());
  EXPECT_EQ(v, out);
}

TEST_P(BackendConformanceTest, ConcurrentWorkersDisjointKeys) {
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<float> v(8), out(8);
      for (Key i = 0; i < 300; ++i) {
        const Key k = static_cast<Key>(t) * 1000 + i;
        for (int d = 0; d < 8; ++d) v[d] = static_cast<float>(k * 10 + d);
        if (!backend_->PutEmbedding(k, v.data()).ok() ||
            !backend_->GetEmbedding(k, out.data()).ok() || out != v) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}


TEST_P(BackendConformanceTest, ApplyGradientMatchesGetAxpyPut) {
  std::vector<float> before(8), grad(8), after(8);
  ASSERT_TRUE(backend_->GetEmbedding(11, before.data()).ok());
  for (int d = 0; d < 8; ++d) grad[d] = 0.25f * static_cast<float>(d + 1);
  ASSERT_TRUE(backend_->ApplyGradient(11, grad.data(), 0.1f).ok());
  ASSERT_TRUE(backend_->GetEmbedding(11, after.data()).ok());
  for (int d = 0; d < 8; ++d) {
    EXPECT_NEAR(after[d], before[d] - 0.1f * grad[d], 1e-5f) << "dim " << d;
  }
  // Repeated application accumulates.
  ASSERT_TRUE(backend_->ApplyGradient(11, grad.data(), 0.1f).ok());
  ASSERT_TRUE(backend_->GetEmbedding(11, after.data()).ok());
  for (int d = 0; d < 8; ++d) {
    EXPECT_NEAR(after[d], before[d] - 0.2f * grad[d], 1e-5f) << "dim " << d;
  }
}

TEST_P(BackendConformanceTest, ConcurrentApplyGradientLosesNothingOnMlkv) {
  // The fused path is atomic per record on MLKV; emulated backends may
  // lose updates under races (the paper's point about stock engines), so
  // the exact-sum assertion applies to the MLKV backend only (local or
  // behind the wire — the server executes the same fused Rmw).
  if (std::get<0>(GetParam()) != BackendKind::kMlkv) {
    GTEST_SKIP() << "atomicity guaranteed only by the fused Rmw path";
  }
  std::vector<float> zero(8, 0.0f);
  ASSERT_TRUE(backend_->PutEmbedding(3, zero.data()).ok());
  constexpr int kThreads = 4;
  constexpr int kApplies = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<float> grad(8, 1.0f);
      for (int i = 0; i < kApplies; ++i) {
        ASSERT_TRUE(backend_->ApplyGradient(3, grad.data(), 0.001f).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<float> v(8);
  ASSERT_TRUE(backend_->GetEmbedding(3, v.data()).ok());
  for (int d = 0; d < 8; ++d) {
    EXPECT_NEAR(v[d], -0.001f * kThreads * kApplies, 1e-2f) << "dim " << d;
  }
}

// --- Batch-first surface: MultiGet / MultiPut / MultiApplyGradient ---

TEST_P(BackendConformanceTest, MultiPutThenMultiGetRoundTrips) {
  constexpr size_t kN = 64;
  std::vector<Key> keys(kN);
  std::vector<float> values(kN * 8);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = 100 + i * 3;
    for (int d = 0; d < 8; ++d) values[i * 8 + d] = i * 10.0f + d;
  }
  const BatchResult put = backend_->MultiPut(keys, values.data());
  EXPECT_TRUE(put.AllOk());
  EXPECT_EQ(put.size(), kN);
  std::vector<float> out(kN * 8);
  const BatchResult got = backend_->MultiGet(keys, out.data());
  EXPECT_TRUE(got.AllOk());
  EXPECT_EQ(got.found, kN);
  EXPECT_EQ(got.missing, 0u);
  EXPECT_EQ(out, values);
}

TEST_P(BackendConformanceTest, MultiGetReportsPerKeyFoundAndMissing) {
  std::vector<float> v(8, 1.5f);
  ASSERT_TRUE(backend_->PutEmbedding(10, v.data()).ok());
  ASSERT_TRUE(backend_->PutEmbedding(12, v.data()).ok());
  // Key 11 is absent and appears twice: the duplicate-key path must also
  // leave missing rows untouched.
  std::vector<Key> keys = {10, 11, 12, 13, 11};
  std::vector<float> out(keys.size() * 8, -7.0f);
  MultiGetOptions no_init;
  no_init.init_missing = false;
  const BatchResult r = backend_->MultiGet(keys, out.data(), no_init);
  EXPECT_EQ(r.codes[0], Status::Code::kOk);
  EXPECT_EQ(r.codes[1], Status::Code::kNotFound);
  EXPECT_EQ(r.codes[2], Status::Code::kOk);
  EXPECT_EQ(r.codes[3], Status::Code::kNotFound);
  EXPECT_EQ(r.codes[4], Status::Code::kNotFound);
  EXPECT_EQ(r.found, 2u);
  EXPECT_EQ(r.missing, 3u);
  EXPECT_FALSE(r.AllOk());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_TRUE(r.StatusAt(1).IsNotFound());
  // Found rows are served; missing rows stay untouched.
  EXPECT_FLOAT_EQ(out[0], 1.5f);
  EXPECT_FLOAT_EQ(out[8], -7.0f);
  EXPECT_FLOAT_EQ(out[3 * 8], -7.0f);
  EXPECT_FLOAT_EQ(out[4 * 8], -7.0f);
}

TEST_P(BackendConformanceTest, MultiGetInitializesMissingAndCountsThem) {
  std::vector<float> v(8, 2.0f);
  ASSERT_TRUE(backend_->PutEmbedding(20, v.data()).ok());
  std::vector<Key> keys = {20, 21};
  std::vector<float> out(keys.size() * 8);
  const BatchResult r = backend_->MultiGet(keys, out.data());
  EXPECT_TRUE(r.AllOk());
  EXPECT_EQ(r.found, 1u);
  EXPECT_EQ(r.missing, 1u) << "fresh key should count as missing";
  // The bootstrap is the shared deterministic derivation.
  Rng rng(Hash64(Key{21} ^ 0xE5B0C47Aull));
  const float scale = 1.0f / std::sqrt(8.0f);
  for (int d = 0; d < 8; ++d) {
    EXPECT_FLOAT_EQ(out[8 + d],
                    static_cast<float>(rng.NextDouble() * 2.0 - 1.0) * scale);
  }
}

TEST_P(BackendConformanceTest, MultiGetDuplicateKeysAgree) {
  std::vector<Key> keys = {9, 9, 9};
  std::vector<float> out(keys.size() * 8);
  const BatchResult r = backend_->MultiGet(keys, out.data());
  EXPECT_TRUE(r.AllOk());
  EXPECT_EQ(r.missing, 1u) << "only the first occurrence bootstraps";
  EXPECT_EQ(r.found, 2u);
  for (int d = 0; d < 8; ++d) {
    EXPECT_FLOAT_EQ(out[d], out[8 + d]);
    EXPECT_FLOAT_EQ(out[d], out[16 + d]);
  }
}

TEST_P(BackendConformanceTest, MultiPutDuplicateKeysLastWins) {
  std::vector<Key> keys = {4, 4};
  std::vector<float> values(keys.size() * 8);
  for (int d = 0; d < 8; ++d) {
    values[d] = 1.0f;
    values[8 + d] = 2.0f;
  }
  EXPECT_TRUE(backend_->MultiPut(keys, values.data()).AllOk());
  std::vector<float> out(8);
  ASSERT_TRUE(backend_->GetEmbedding(4, out.data()).ok());
  for (int d = 0; d < 8; ++d) EXPECT_FLOAT_EQ(out[d], 2.0f);
}

TEST_P(BackendConformanceTest, MultiApplyGradientAccumulatesDuplicates) {
  std::vector<float> zero(8, 0.0f);
  ASSERT_TRUE(backend_->PutEmbedding(30, zero.data()).ok());
  ASSERT_TRUE(backend_->PutEmbedding(31, zero.data()).ok());
  // Key 30 appears twice with different gradients: SGD is linear, so the
  // batch must apply their sum no matter how the engine dedups.
  std::vector<Key> keys = {30, 31, 30};
  std::vector<float> grads(keys.size() * 8);
  for (int d = 0; d < 8; ++d) {
    grads[d] = 1.0f;
    grads[8 + d] = 2.0f;
    grads[16 + d] = 3.0f;
  }
  EXPECT_TRUE(backend_->MultiApplyGradient(keys, grads.data(), 0.5f).AllOk());
  std::vector<float> out(8);
  ASSERT_TRUE(backend_->GetEmbedding(30, out.data()).ok());
  for (int d = 0; d < 8; ++d) EXPECT_NEAR(out[d], -2.0f, 1e-5f);
  ASSERT_TRUE(backend_->GetEmbedding(31, out.data()).ok());
  for (int d = 0; d < 8; ++d) EXPECT_NEAR(out[d], -1.0f, 1e-5f);
}

TEST_P(BackendConformanceTest, UntrackedMultiGetServesEveryKey) {
  // Untracked batch reads must serve values (bootstrapping fresh keys) on
  // every backend; on MLKV they additionally leave the staleness clocks
  // alone (asserted at the store layer by staleness_test).
  std::vector<float> v = {3, 1, 4, 1, 5, 9, 2, 6};
  ASSERT_TRUE(backend_->PutEmbedding(77, v.data()).ok());
  std::vector<Key> keys = {77, 78};
  std::vector<float> out(keys.size() * 8);
  MultiGetOptions untracked;
  untracked.untracked = true;
  const BatchResult r = backend_->MultiGet(keys, out.data(), untracked);
  EXPECT_TRUE(r.AllOk());
  EXPECT_EQ(r.found, 1u);
  EXPECT_EQ(r.missing, 1u);
  for (int d = 0; d < 8; ++d) EXPECT_FLOAT_EQ(out[d], v[d]);
}

const char* KindName(const ::testing::TestParamInfo<BackendKind>& info) {
  return KindNameOf(info.param);
}

std::string ConformanceParamName(
    const ::testing::TestParamInfo<ConformanceParam>& info) {
  std::string name = KindNameOf(std::get<0>(info.param));
  switch (std::get<1>(info.param)) {
    case Via::kInProcess: break;
    case Via::kRemote: name += "Remote"; break;
    case Via::kCluster: name += "Cluster"; break;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendConformanceTest,
    ::testing::Values(ConformanceParam{BackendKind::kMlkv, Via::kInProcess},
                      ConformanceParam{BackendKind::kFaster, Via::kInProcess},
                      ConformanceParam{BackendKind::kLsm, Via::kInProcess},
                      ConformanceParam{BackendKind::kBtree, Via::kInProcess},
                      ConformanceParam{BackendKind::kInMemory,
                                       Via::kInProcess}),
    ConformanceParamName);

// The same contract over the wire: RemoteBackend in front of a loopback
// KvServer must be indistinguishable from the engine linked in-process.
INSTANTIATE_TEST_SUITE_P(
    RemoteLoopback, BackendConformanceTest,
    ::testing::Values(ConformanceParam{BackendKind::kMlkv, Via::kRemote},
                      ConformanceParam{BackendKind::kFaster, Via::kRemote}),
    ConformanceParamName);

// And across a partitioned 2-server cluster: ClusterBackend's scatter /
// gather (plus the servers' ownership enforcement) must also be
// indistinguishable from the engine linked in-process.
INSTANTIATE_TEST_SUITE_P(
    ClusterLoopback, BackendConformanceTest,
    ::testing::Values(ConformanceParam{BackendKind::kMlkv, Via::kCluster},
                      ConformanceParam{BackendKind::kFaster, Via::kCluster}),
    ConformanceParamName);

// The I/O-bound engines fan large batches out in chunks over a per-backend
// ThreadPool; the conformance contract must not change when they do.
class BackendBatchParallelTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>();
    BackendConfig cfg;
    cfg.dir = dir_->File("backend");
    cfg.dim = 8;
    cfg.buffer_bytes = 4ull << 20;
    cfg.staleness_bound = UINT32_MAX - 1;
    cfg.batch_threads = 3;
    cfg.batch_min_chunk = 16;  // force fan-out on modest batches
    ASSERT_TRUE(MakeBackend(GetParam(), cfg, &backend_).ok());
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<KvBackend> backend_;
};

TEST_P(BackendBatchParallelTest, LargeBatchRoundTripsAcrossChunks) {
  constexpr size_t kN = 1000;
  std::vector<Key> keys(kN);
  std::vector<float> values(kN * 8);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = i * 7 + 1;
    for (int d = 0; d < 8; ++d) {
      values[i * 8 + d] = static_cast<float>(i + d);
    }
  }
  ASSERT_TRUE(backend_->MultiPut(keys, values.data()).AllOk());
  std::vector<float> out(kN * 8);
  const BatchResult r = backend_->MultiGet(keys, out.data());
  EXPECT_TRUE(r.AllOk());
  EXPECT_EQ(r.found, kN);
  EXPECT_EQ(out, values);
  std::vector<float> grads(kN * 8, 2.0f);
  EXPECT_TRUE(backend_->MultiApplyGradient(keys, grads.data(), 0.25f).AllOk());
  std::vector<float> one(8);
  ASSERT_TRUE(backend_->GetEmbedding(keys[123], one.data()).ok());
  for (int d = 0; d < 8; ++d) {
    EXPECT_NEAR(one[d], values[123 * 8 + d] - 0.5f, 1e-5f);
  }
}

TEST_P(BackendBatchParallelTest, MixedBatchKeepsPerKeyCodesInInputOrder) {
  // Seed every third key, then read a large no-init batch: per-key codes
  // must line up with input positions even after chunked fan-out + stitch.
  constexpr size_t kN = 600;
  std::vector<float> v(8, 4.0f);
  for (size_t i = 0; i < kN; i += 3) {
    ASSERT_TRUE(backend_->PutEmbedding(i, v.data()).ok());
  }
  std::vector<Key> keys(kN);
  for (size_t i = 0; i < kN; ++i) keys[i] = i;
  std::vector<float> out(kN * 8);
  MultiGetOptions no_init;
  no_init.init_missing = false;
  const BatchResult r = backend_->MultiGet(keys, out.data(), no_init);
  ASSERT_EQ(r.size(), kN);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(r.codes[i], i % 3 == 0 ? Status::Code::kOk
                                     : Status::Code::kNotFound)
        << "key " << i;
  }
  EXPECT_EQ(r.found, kN / 3);
  EXPECT_EQ(r.missing, kN - kN / 3);
}

INSTANTIATE_TEST_SUITE_P(IoEngines, BackendBatchParallelTest,
                         ::testing::Values(BackendKind::kFaster,
                                           BackendKind::kLsm,
                                           BackendKind::kBtree),
                         KindName);

// Shard-routing conformance for the sharded engines (MLKV and FASTER):
// whatever shard a key scatters to, results must land at the caller's
// indices with semantics identical to the unsharded store.
class ShardRoutingConformanceTest : public ::testing::TestWithParam<
                                        std::tuple<BackendKind, uint32_t>> {
 protected:
  std::unique_ptr<KvBackend> MakeShardedBackend(const std::string& dir,
                                                uint32_t shard_bits) {
    BackendConfig cfg;
    cfg.dir = dir;
    cfg.dim = 8;
    cfg.buffer_bytes = 4ull << 20;
    cfg.staleness_bound = UINT32_MAX - 1;
    cfg.shard_bits = shard_bits;
    cfg.batch_threads = 2;
    cfg.batch_min_chunk = 16;
    std::unique_ptr<KvBackend> backend;
    EXPECT_TRUE(MakeBackend(std::get<0>(GetParam()), cfg, &backend).ok());
    return backend;
  }
};

TEST_P(ShardRoutingConformanceTest, ShuffledBatchLandsInCallerOrder) {
  TempDir dir;
  auto backend = MakeShardedBackend(dir.File("b"), std::get<1>(GetParam()));
  constexpr size_t kN = 700;
  std::vector<Key> keys(kN);
  for (size_t i = 0; i < kN; ++i) keys[i] = i * 11 + 3;
  Rng rng(7);
  for (size_t i = kN - 1; i > 0; --i) {
    std::swap(keys[i], keys[rng.Next() % (i + 1)]);
  }
  std::vector<float> values(kN * 8);
  for (size_t i = 0; i < kN; ++i) {
    for (int d = 0; d < 8; ++d) {
      values[i * 8 + d] = static_cast<float>(keys[i] + d);
    }
  }
  ASSERT_TRUE(backend->MultiPut(keys, values.data()).AllOk());
  std::vector<float> out(kN * 8);
  const BatchResult r = backend->MultiGet(keys, out.data());
  ASSERT_TRUE(r.AllOk());
  EXPECT_EQ(out, values);
}

TEST_P(ShardRoutingConformanceTest, ResultsIndependentOfShardCount) {
  // The shard count is a layout/scaling knob, never a semantic one: the
  // deterministic bootstrap and a fixed op sequence must produce identical
  // vectors under any shard_bits.
  TempDir dir;
  auto sharded = MakeShardedBackend(dir.File("s"), std::get<1>(GetParam()));
  auto single = MakeShardedBackend(dir.File("u"), 0);
  constexpr size_t kN = 300;
  std::vector<Key> keys(kN);
  for (size_t i = 0; i < kN; ++i) keys[i] = i * 5 + 1;
  std::vector<float> a(kN * 8), b(kN * 8);
  ASSERT_TRUE(sharded->MultiGet(keys, a.data()).AllOk());  // init path
  ASSERT_TRUE(single->MultiGet(keys, b.data()).AllOk());
  EXPECT_EQ(a, b);
  std::vector<float> grads(kN * 8, 1.5f);
  ASSERT_TRUE(sharded->MultiApplyGradient(keys, grads.data(), 0.1f).AllOk());
  ASSERT_TRUE(single->MultiApplyGradient(keys, grads.data(), 0.1f).AllOk());
  ASSERT_TRUE(sharded->MultiGet(keys, a.data()).AllOk());
  ASSERT_TRUE(single->MultiGet(keys, b.data()).AllOk());
  EXPECT_EQ(a, b);
}

TEST_P(ShardRoutingConformanceTest, MissingKeysReportAtCallerPositions) {
  TempDir dir;
  auto backend = MakeShardedBackend(dir.File("b"), std::get<1>(GetParam()));
  constexpr size_t kN = 400;
  std::vector<float> v(8, 2.0f);
  for (size_t i = 0; i < kN; i += 2) {
    ASSERT_TRUE(backend->PutEmbedding(i, v.data()).ok());
  }
  std::vector<Key> keys(kN);
  for (size_t i = 0; i < kN; ++i) keys[i] = i;
  std::vector<float> out(kN * 8);
  MultiGetOptions no_init;
  no_init.init_missing = false;
  const BatchResult r = backend->MultiGet(keys, out.data(), no_init);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(r.codes[i], i % 2 == 0 ? Status::Code::kOk
                                     : Status::Code::kNotFound)
        << "key " << i;
  }
  EXPECT_EQ(r.found, kN / 2);
  EXPECT_EQ(r.missing, kN / 2);
}

std::string ShardParamName(
    const ::testing::TestParamInfo<std::tuple<BackendKind, uint32_t>>& info) {
  return std::string(KindName(::testing::TestParamInfo<BackendKind>(
             std::get<0>(info.param), info.index))) +
         "Bits" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    ShardedEngines, ShardRoutingConformanceTest,
    ::testing::Combine(::testing::Values(BackendKind::kMlkv,
                                         BackendKind::kFaster),
                       ::testing::Values(0u, 1u, 2u, 3u)),
    ShardParamName);

// --- remote/in-process parity --------------------------------------------

// Two instances of the same engine, one linked in-process and one behind a
// loopback KvServer, driven through an identical op sequence: MultiGet
// results must be byte-identical and every per-key BatchResult code equal.
// This pins the wire encode/decode to exact fidelity — float rows survive
// bit-for-bit, codes and counts are not re-derived on the client.
class RemoteParityTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(RemoteParityTest, ByteIdenticalResultsAndCodesVsInProcess) {
  TempDir dir;
  BackendConfig cfg;
  cfg.dim = 8;
  cfg.buffer_bytes = 4ull << 20;
  cfg.staleness_bound = UINT32_MAX - 1;

  cfg.dir = dir.File("local");
  std::unique_ptr<KvBackend> local;
  ASSERT_TRUE(MakeBackend(GetParam(), cfg, &local).ok());

  cfg.dir = dir.File("served");
  std::unique_ptr<KvBackend> served;
  ASSERT_TRUE(MakeBackend(GetParam(), cfg, &served).ok());
  net::KvServer server(std::move(served), {});
  ASSERT_TRUE(server.Start().ok());
  BackendConfig rcfg;
  rcfg.remote_addr = server.addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(MakeBackend(BackendKind::kRemote, rcfg, &remote).ok());
  EXPECT_EQ(remote->dim(), local->dim());
  EXPECT_EQ(remote->shard_bits(), local->shard_bits());

  constexpr size_t kN = 200;
  std::vector<Key> keys(kN);
  for (size_t i = 0; i < kN; ++i) keys[i] = i * 13 + 1;
  keys[5] = keys[50];  // duplicates ride along
  keys[7] = keys[70];

  auto expect_same = [&](const BatchResult& a, const BatchResult& b,
                         const char* what) {
    EXPECT_EQ(a.codes, b.codes) << what;
    EXPECT_EQ(a.found, b.found) << what;
    EXPECT_EQ(a.missing, b.missing) << what;
    EXPECT_EQ(a.busy, b.busy) << what;
    EXPECT_EQ(a.failed, b.failed) << what;
  };

  // 1. Bootstrap pass: deterministic init must agree bit-for-bit.
  std::vector<float> la(kN * 8), ra(kN * 8);
  expect_same(local->MultiGet(keys, la.data()),
              remote->MultiGet(keys, ra.data()), "init MultiGet");
  EXPECT_EQ(la, ra);

  // 2. Gradient pass (duplicates accumulate identically).
  std::vector<float> grads(kN * 8);
  for (size_t i = 0; i < grads.size(); ++i) {
    grads[i] = static_cast<float>(i % 17) * 0.125f - 1.0f;
  }
  expect_same(local->MultiApplyGradient(keys, grads.data(), 0.05f),
              remote->MultiApplyGradient(keys, grads.data(), 0.05f),
              "MultiApplyGradient");

  // 3. Overwrite a slice.
  std::vector<float> values(kN * 8);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i) * 0.5f;
  }
  expect_same(local->MultiPut({keys.data(), 64}, values.data()),
              remote->MultiPut({keys.data(), 64}, values.data()),
              "MultiPut");

  // 4. Mixed found/missing read-back, no init: untouched rows, identical
  // codes at every caller position.
  std::vector<Key> probe(keys.begin(), keys.begin() + 100);
  for (size_t i = 0; i < probe.size(); i += 3) {
    probe[i] = 1000000 + i;  // never written
  }
  MultiGetOptions no_init;
  no_init.init_missing = false;
  std::vector<float> lb(probe.size() * 8, -3.0f), rb(probe.size() * 8, -3.0f);
  expect_same(local->MultiGet(probe, lb.data(), no_init),
              remote->MultiGet(probe, rb.data(), no_init), "mixed MultiGet");
  EXPECT_EQ(lb, rb);

  remote.reset();
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(ShardedEngines, RemoteParityTest,
                         ::testing::Values(BackendKind::kMlkv,
                                           BackendKind::kFaster),
                         KindName);

// Per-key kBusy (bounded-staleness abort) must survive the wire: a BSP
// table whose key is read twice without an intervening Put reports the
// second read Busy, remote exactly like local.
TEST(RemoteBusyPropagationTest, BusyCodesCrossTheWire) {
  TempDir dir;
  BackendConfig cfg;
  cfg.dir = dir.File("backend");
  cfg.dim = 8;
  cfg.buffer_bytes = 4ull << 20;
  cfg.staleness_bound = 0;   // BSP: one Get per Put
  cfg.busy_spin_limit = 64;  // abort fast — no writer will ever come
  std::unique_ptr<KvBackend> engine;
  ASSERT_TRUE(MakeBackend(BackendKind::kMlkv, cfg, &engine).ok());
  net::KvServer server(std::move(engine), {});
  ASSERT_TRUE(server.Start().ok());
  BackendConfig rcfg;
  rcfg.remote_addr = server.addr();
  std::unique_ptr<KvBackend> remote;
  ASSERT_TRUE(MakeBackend(BackendKind::kRemote, rcfg, &remote).ok());

  std::vector<Key> key = {42};
  std::vector<float> v(8, 1.0f);
  ASSERT_TRUE(remote->MultiPut(key, v.data()).AllOk());
  std::vector<float> out(8);
  EXPECT_TRUE(remote->MultiGet(key, out.data()).AllOk());
  const BatchResult second = remote->MultiGet(key, out.data());
  EXPECT_EQ(second.codes[0], Status::Code::kBusy);
  EXPECT_EQ(second.busy, 1u);
  EXPECT_EQ(second.found, 0u);
  EXPECT_TRUE(second.status().IsBusy());
  // The standard caller recovery — an untracked re-read — works remotely.
  MultiGetOptions untracked;
  untracked.untracked = true;
  const BatchResult peek = remote->MultiGet(key, out.data(), untracked);
  EXPECT_TRUE(peek.AllOk());
  EXPECT_FLOAT_EQ(out[0], 1.0f);

  remote.reset();
  server.Stop();
}

}  // namespace
}  // namespace mlkv
