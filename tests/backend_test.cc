// Parameterized conformance suite: every backend behind the KvBackend seam
// must satisfy the same embedding-store contract (the reusability property
// of Table I — swapping engines must not change application semantics).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "backend/kv_backend.h"
#include "common/hash.h"
#include "common/random.h"
#include "io/temp_dir.h"

namespace mlkv {
namespace {

class BackendConformanceTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>();
    BackendConfig cfg;
    cfg.dir = dir_->File("backend");
    cfg.dim = 8;
    cfg.buffer_bytes = 4ull << 20;
    cfg.staleness_bound = kHugeBound;
    ASSERT_TRUE(MakeBackend(GetParam(), cfg, &backend_).ok());
  }

  static constexpr uint32_t kHugeBound = UINT32_MAX - 1;
  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<KvBackend> backend_;
};

TEST_P(BackendConformanceTest, GetInitializesDeterministically) {
  std::vector<float> a(8), b(8);
  ASSERT_TRUE(backend_->GetEmbedding(42, a.data()).ok());
  ASSERT_TRUE(backend_->GetEmbedding(42, b.data()).ok());
  EXPECT_EQ(a, b);
  // Init scale bound: |v| <= 1/sqrt(dim).
  for (float v : a) EXPECT_LE(std::fabs(v), 1.0f / std::sqrt(8.0f) + 1e-6f);
}

TEST_P(BackendConformanceTest, InitIsBackendIndependent) {
  // All backends share the init derivation, so convergence comparisons
  // start from identical embeddings.
  std::vector<float> v(8);
  ASSERT_TRUE(backend_->GetEmbedding(7, v.data()).ok());
  Rng rng(Hash64(Key{7} ^ 0xE5B0C47Aull));
  const float scale = 1.0f / std::sqrt(8.0f);
  for (int d = 0; d < 8; ++d) {
    EXPECT_FLOAT_EQ(v[d],
                    static_cast<float>(rng.NextDouble() * 2.0 - 1.0) * scale);
  }
}

TEST_P(BackendConformanceTest, PutThenGetRoundTrips) {
  std::vector<float> v = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(backend_->PutEmbedding(1, v.data()).ok());
  std::vector<float> out(8);
  ASSERT_TRUE(backend_->GetEmbedding(1, out.data()).ok());
  EXPECT_EQ(v, out);
}

TEST_P(BackendConformanceTest, PeekMatchesGet) {
  std::vector<float> v = {8, 7, 6, 5, 4, 3, 2, 1};
  ASSERT_TRUE(backend_->PutEmbedding(2, v.data()).ok());
  std::vector<float> out(8);
  ASSERT_TRUE(backend_->PeekEmbedding(2, out.data()).ok());
  EXPECT_EQ(v, out);
}

TEST_P(BackendConformanceTest, ManyKeysLargerThanBuffer) {
  // 40k keys x 32B values exceed small internal buffers for the disk
  // backends; all must still round-trip.
  std::vector<float> v(8), out(8);
  for (Key k = 0; k < 5000; ++k) {
    for (int d = 0; d < 8; ++d) v[d] = static_cast<float>(k + d);
    ASSERT_TRUE(backend_->PutEmbedding(k, v.data()).ok()) << k;
  }
  for (Key k = 0; k < 5000; k += 37) {
    ASSERT_TRUE(backend_->GetEmbedding(k, out.data()).ok()) << k;
    for (int d = 0; d < 8; ++d) EXPECT_FLOAT_EQ(out[d], k + d) << k;
  }
}

TEST_P(BackendConformanceTest, LookaheadIsHarmless) {
  std::vector<float> v = {1, 1, 2, 3, 5, 8, 13, 21};
  ASSERT_TRUE(backend_->PutEmbedding(5, v.data()).ok());
  std::vector<Key> keys = {5, 6, 7};
  ASSERT_TRUE(backend_->Lookahead(keys).ok());
  backend_->WaitIdle();
  std::vector<float> out(8);
  ASSERT_TRUE(backend_->GetEmbedding(5, out.data()).ok());
  EXPECT_EQ(v, out);
}

TEST_P(BackendConformanceTest, ConcurrentWorkersDisjointKeys) {
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<float> v(8), out(8);
      for (Key i = 0; i < 300; ++i) {
        const Key k = static_cast<Key>(t) * 1000 + i;
        for (int d = 0; d < 8; ++d) v[d] = static_cast<float>(k * 10 + d);
        if (!backend_->PutEmbedding(k, v.data()).ok() ||
            !backend_->GetEmbedding(k, out.data()).ok() || out != v) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}


TEST_P(BackendConformanceTest, ApplyGradientMatchesGetAxpyPut) {
  std::vector<float> before(8), grad(8), after(8);
  ASSERT_TRUE(backend_->GetEmbedding(11, before.data()).ok());
  for (int d = 0; d < 8; ++d) grad[d] = 0.25f * static_cast<float>(d + 1);
  ASSERT_TRUE(backend_->ApplyGradient(11, grad.data(), 0.1f).ok());
  ASSERT_TRUE(backend_->GetEmbedding(11, after.data()).ok());
  for (int d = 0; d < 8; ++d) {
    EXPECT_NEAR(after[d], before[d] - 0.1f * grad[d], 1e-5f) << "dim " << d;
  }
  // Repeated application accumulates.
  ASSERT_TRUE(backend_->ApplyGradient(11, grad.data(), 0.1f).ok());
  ASSERT_TRUE(backend_->GetEmbedding(11, after.data()).ok());
  for (int d = 0; d < 8; ++d) {
    EXPECT_NEAR(after[d], before[d] - 0.2f * grad[d], 1e-5f) << "dim " << d;
  }
}

TEST_P(BackendConformanceTest, ConcurrentApplyGradientLosesNothingOnMlkv) {
  // The fused path is atomic per record on MLKV; emulated backends may
  // lose updates under races (the paper's point about stock engines), so
  // the exact-sum assertion applies to the MLKV backend only.
  if (GetParam() != BackendKind::kMlkv) {
    GTEST_SKIP() << "atomicity guaranteed only by the fused Rmw path";
  }
  std::vector<float> zero(8, 0.0f);
  ASSERT_TRUE(backend_->PutEmbedding(3, zero.data()).ok());
  constexpr int kThreads = 4;
  constexpr int kApplies = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<float> grad(8, 1.0f);
      for (int i = 0; i < kApplies; ++i) {
        ASSERT_TRUE(backend_->ApplyGradient(3, grad.data(), 0.001f).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<float> v(8);
  ASSERT_TRUE(backend_->GetEmbedding(3, v.data()).ok());
  for (int d = 0; d < 8; ++d) {
    EXPECT_NEAR(v[d], -0.001f * kThreads * kApplies, 1e-2f) << "dim " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendConformanceTest,
    ::testing::Values(BackendKind::kMlkv, BackendKind::kFaster,
                      BackendKind::kLsm, BackendKind::kBtree,
                      BackendKind::kInMemory),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      switch (info.param) {
        case BackendKind::kMlkv: return "Mlkv";
        case BackendKind::kFaster: return "Faster";
        case BackendKind::kLsm: return "Lsm";
        case BackendKind::kBtree: return "Btree";
        case BackendKind::kInMemory: return "InMemory";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace mlkv
