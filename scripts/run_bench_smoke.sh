#!/usr/bin/env bash
# Smoke-run every benchmark binary with tiny iteration counts (--smoke; see
# bench/bench_util.h). Catches "bench rotted" without paying bench runtimes.
# Each bench's stdout is kept under <log_dir> so CI can publish the tables
# (e.g. the fig2 shard-scaling sweep) as a per-PR artifact.
#
# Usage: scripts/run_bench_smoke.sh [build_dir] [log_dir]
#        (defaults: build, <build_dir>/bench-smoke-logs)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
bench_dir="${build_dir}/bench"
log_dir="${2:-${build_dir}/bench-smoke-logs}"

if [[ ! -d "${bench_dir}" ]]; then
  echo "error: ${bench_dir} not found — build with MLKV_BUILD_BENCH=ON first" >&2
  exit 1
fi
mkdir -p "${log_dir}"

failed=0
# The glob below picks up every bench binary, including
# bench_micro_kernels --smoke — the scalar-vs-vector table for the fused
# optimizer kernels, which is how a runner whose CPU lacks AVX2 still
# shows up in the published artifacts (speedup column ~1.0x).
for bench in "${bench_dir}"/bench_*; do
  [[ -x "${bench}" ]] || continue
  name="$(basename "${bench}")"
  if [[ "${name}" == "bench_micro_store" ]]; then
    # Google Benchmark binary: its own flag vocabulary.
    args=(--benchmark_min_time=0.01)
  else
    args=(--smoke)
  fi
  echo "=== ${name} ${args[*]}"
  if ! "${bench}" "${args[@]}" > "${log_dir}/${name}.txt"; then
    echo "FAILED: ${name}" >&2
    failed=1
  fi
done
# One remote-mode smoke: the same batch sweep through a loopback KvServer
# (RemoteBackend), so the network path is exercised wherever the smoke
# suite runs — including the Release bench-smoke CI job.
if [[ -x "${bench_dir}/bench_ycsb_suite" ]]; then
  echo "=== bench_ycsb_suite --smoke --remote"
  if ! "${bench_dir}/bench_ycsb_suite" --smoke --remote \
      > "${log_dir}/bench_ycsb_suite_remote.txt"; then
    echo "FAILED: bench_ycsb_suite --remote" >&2
    failed=1
  fi
fi
# One async cold-read smoke: the cold-working-set MultiGet sweep
# (io_mode=sync vs async through the pending-read pipeline), so the async
# disk path — io_uring where the runner's kernel admits it, thread-pool
# fallback otherwise — is exercised on every merge.
if [[ -x "${bench_dir}/bench_fig9_lookahead" ]]; then
  echo "=== bench_fig9_lookahead --smoke --cold"
  if ! "${bench_dir}/bench_fig9_lookahead" --smoke --cold \
      > "${log_dir}/bench_fig9_lookahead_cold.txt"; then
    echo "FAILED: bench_fig9_lookahead --cold" >&2
    failed=1
  fi
fi

# One durability smoke: the write-pipeline sweeps alone (group-committed
# flushes vs per-batch full flush, incremental vs full checkpoint bytes),
# so the async write path and the delta-checkpoint format are exercised on
# every merge. See docs/DURABILITY.md.
if [[ -x "${bench_dir}/bench_checkpoint" ]]; then
  echo "=== bench_checkpoint --smoke --durability"
  if ! "${bench_dir}/bench_checkpoint" --smoke --durability \
      > "${log_dir}/bench_checkpoint_durability.txt"; then
    echo "FAILED: bench_checkpoint --durability" >&2
    failed=1
  fi
fi

# One cluster smoke: two self-hosted loopback KvServers behind a
# ClusterBackend vs one server behind a RemoteBackend, uniform MultiGet on a
# working set that overflows a single box's 2 MiB buffer (simulated NVMe
# read costs apply). The speedup column is the scale-out check: the 2-server
# cluster should show >= 1.5x the single server's aggregate keys/s. See
# docs/CLUSTER.md for the flag rationale — skewed draws or starved
# shard/worker counts measure the cache or the queue, not the second box.
if [[ -x "${bench_dir}/bench_ycsb_suite" ]]; then
  echo "=== bench_ycsb_suite --cluster_addrs=self"
  if ! "${bench_dir}/bench_ycsb_suite" --no_suite --no_batch_sweep \
      --keys=60000 --ops=60000 --threads=8 --buffer_mb=2 --shard_bits=4 \
      --server_workers=4 --batch_size=256 --cluster_addrs=self \
      > "${log_dir}/bench_ycsb_suite_cluster.txt"; then
    echo "FAILED: bench_ycsb_suite --cluster_addrs=self" >&2
    failed=1
  fi
fi

# One serving-tail smoke: the bench_serving --hedge A/B — a 2-endpoint
# mutual-replica loopback cluster where one server stalls every Nth read,
# measured with hedging off then on (see docs/SERVING.md). Asserts the
# headline the feature exists for: hedged read p99 strictly below the
# unhedged p99, for < 5% extra request volume. Also asserts the hedged
# p50 (unskewed requests, which pay one pool handoff + row copy but never
# a second RPC) stays below the unhedged p99 — the common path must not
# itself drift into the old tail.
if [[ -x "${bench_dir}/bench_serving" ]]; then
  echo "=== bench_serving --smoke --hedge"
  hedge_log="${log_dir}/bench_serving_hedge.txt"
  if ! "${bench_dir}/bench_serving" --smoke --hedge --hot_replicate_top_k=64 \
      > "${hedge_log}"; then
    echo "FAILED: bench_serving --hedge" >&2
    failed=1
  else
    # "hedging: read p99 <off> -> <on> us (...), p999 ..., +<pct>% request volume"
    read -r off_p99 on_p99 vol_pct <<< "$(sed -n \
      's/^hedging: read p99 \([0-9]*\) -> \([0-9]*\) us.*+\([0-9.]*\)% request volume.*/\1 \2 \3/p' \
      "${hedge_log}")"
    on_p50="$(awk '$1 == "hedged" { print $3; exit }' "${hedge_log}")"
    if [[ -z "${off_p99:-}" || -z "${on_p99:-}" || -z "${on_p50:-}" ]]; then
      echo "FAILED: bench_serving --hedge produced no A/B summary" >&2
      failed=1
    elif (( on_p99 >= off_p99 )); then
      echo "FAILED: hedging did not improve read p99 (${off_p99} -> ${on_p99} us)" >&2
      failed=1
    elif (( on_p50 >= off_p99 )); then
      echo "FAILED: hedged unskewed p50 (${on_p50} us) regressed into the unhedged p99 (${off_p99} us)" >&2
      failed=1
    elif ! awk -v v="${vol_pct}" 'BEGIN { exit !(v < 5.0) }'; then
      echo "FAILED: hedging cost ${vol_pct}% extra request volume (>= 5%)" >&2
      failed=1
    fi
  fi
fi

# One observability smoke: serve a store with --metrics_addr, scrape
# GET /metrics, keep the exposition as an artifact, and validate it with
# scripts/check_metrics.sh (duplicate families, bad names, histogram
# invariants). See docs/OBSERVABILITY.md for the metric catalog.
cli="${build_dir}/examples/mlkv_cli"
if [[ -x "${cli}" ]] && command -v curl > /dev/null; then
  echo "=== mlkv_cli serve --metrics_addr + /metrics scrape"
  obs_dir="$(mktemp -d)"
  trap 'rm -rf "${obs_dir}"' EXIT
  "${cli}" "${obs_dir}/store" create smoke 8 16 adagrad \
    > "${log_dir}/metrics_scrape_serve.txt"
  "${cli}" "${obs_dir}/store" serve --addr 127.0.0.1:7399 --backend mlkv \
    --dim 8 --metrics_addr 127.0.0.1:7398 \
    >> "${log_dir}/metrics_scrape_serve.txt" 2>&1 &
  serve_pid=$!
  scrape_ok=0
  for _ in $(seq 1 50); do
    if curl -fsS http://127.0.0.1:7398/metrics \
        -o "${log_dir}/metrics_scrape.prom" 2> /dev/null; then
      scrape_ok=1
      break
    fi
    sleep 0.2
  done
  # Drive a few requests through the wire path so server/op families have
  # non-zero samples in the published scrape, then re-scrape.
  if [[ "${scrape_ok}" == 1 ]]; then
    "${cli}" - remote-put --addr 127.0.0.1:7399 1 1,2,3,4,5,6,7,8 \
      >> "${log_dir}/metrics_scrape_serve.txt"
    "${cli}" - remote-get --addr 127.0.0.1:7399 1 \
      >> "${log_dir}/metrics_scrape_serve.txt"
    "${cli}" - stats --addr 127.0.0.1:7399 \
      >> "${log_dir}/metrics_scrape_serve.txt"
    curl -fsS --max-time 2 http://127.0.0.1:7398/nope \
      -o /dev/null 2> /dev/null || true  # 404 path: must not wedge serving
    curl -fsS http://127.0.0.1:7398/metrics \
      -o "${log_dir}/metrics_scrape.prom"
  fi
  kill "${serve_pid}" 2> /dev/null || true
  wait "${serve_pid}" 2> /dev/null || true
  if [[ "${scrape_ok}" != 1 ]]; then
    echo "FAILED: /metrics scrape (server never came up)" >&2
    failed=1
  elif ! scripts/check_metrics.sh "${log_dir}/metrics_scrape.prom"; then
    echo "FAILED: check_metrics.sh rejected the exposition" >&2
    failed=1
  fi
fi

echo "bench output tables: ${log_dir}"
exit "${failed}"
