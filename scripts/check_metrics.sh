#!/usr/bin/env bash
# Validate a Prometheus text-exposition (v0.0.4) scrape, e.g. the
# /metrics output MetricsHttpServer serves (docs/OBSERVABILITY.md).
# Fails on the malformations a registry bug would produce: duplicate or
# interleaved families, samples with no # TYPE header, bad metric/label
# names, unparseable values, histograms missing their +Inf bucket or with
# +Inf != _count.
#
# Usage: scripts/check_metrics.sh [scrape_file]   (default: stdin)
set -euo pipefail

input="${1:-/dev/stdin}"

awk '
function fail(msg) {
  printf "check_metrics: line %d: %s\n  %s\n", NR, msg, $0 > "/dev/stderr"
  bad = 1
}
# Family a sample belongs to: histogram series carry _bucket/_sum/_count
# suffixes on top of the declared family name.
function family_of(name) {
  if (name in type) return name
  if (name ~ /_bucket$/ && substr(name, 1, length(name) - 7) in type)
    return substr(name, 1, length(name) - 7)
  if (name ~ /_sum$/ && substr(name, 1, length(name) - 4) in type)
    return substr(name, 1, length(name) - 4)
  if (name ~ /_count$/ && substr(name, 1, length(name) - 6) in type)
    return substr(name, 1, length(name) - 6)
  return ""
}
BEGIN { bad = 0; current = "" }

/^$/ { fail("blank line in exposition"); next }

/^# HELP / {
  if (split($0, h, " ") < 3) fail("# HELP without name and text")
  next
}
/^# TYPE / {
  n = split($0, t, " ")
  if (n != 4) { fail("# TYPE must be \"# TYPE <name> <kind>\""); next }
  name = t[3]; kind = t[4]
  if (name !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) fail("invalid family name " name)
  if (kind !~ /^(counter|gauge|histogram|summary|untyped)$/)
    fail("unknown family kind " kind)
  if (name in type) fail("duplicate # TYPE for family " name)
  type[name] = kind
  next
}
/^#/ { fail("unrecognized comment line"); next }

{
  # Sample: name[{labels}] value [timestamp]
  line = $0
  name = line
  labels = ""
  brace = index(line, "{")
  if (brace > 0) {
    name = substr(line, 1, brace - 1)
    rest = substr(line, brace)
    close_idx = index(rest, "}")
    if (close_idx == 0) { fail("unterminated label set"); next }
    labels = substr(rest, 2, close_idx - 2)
    line = name " " substr(rest, close_idx + 2)
  }
  n = split(line, f, " ")
  if (brace == 0) name = f[1]
  if (n < 2 || n > 3) { fail("sample is not \"name value [ts]\""); next }
  if (name !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) fail("invalid metric name " name)
  value = f[2]
  if (value !~ /^[+-]?([0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|Inf|NaN)$/)
    fail("unparseable value " value)

  fam = family_of(name)
  if (fam == "") { fail("sample " name " has no # TYPE header"); next }

  # Families must be contiguous: once left, a family may not reappear.
  if (fam != current) {
    if (fam in seen) fail("family " fam " interleaved (appears twice)")
    seen[fam] = 1
    current = fam
  }

  # Light label-syntax check: key="...",... with valid keys. Escaped
  # quotes inside values are rewritten away before matching.
  if (labels != "") {
    check = labels
    gsub(/\\\\/, "", check)
    gsub(/\\"/, "", check)
    if (check !~ /^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*$/)
      fail("malformed label set {" labels "}")
  }

  if (type[fam] == "histogram") {
    if (name == fam "_count") hist_count[fam] = value + 0
    if (name == fam "_bucket" && labels ~ /le="\+Inf"/) {
      hist_inf[fam] = value + 0
      hist_has_inf[fam] = 1
    }
    if (name == fam "_sum") hist_has_sum[fam] = 1
  }
}
END {
  for (fam in type) {
    if (type[fam] != "histogram") continue
    if (!(fam in seen)) continue  # declared but no samples: tolerated
    if (!(fam in hist_has_inf)) fail("histogram " fam " missing +Inf bucket")
    if (!(fam in hist_has_sum)) fail("histogram " fam " missing _sum")
    if (!(fam in hist_count)) fail("histogram " fam " missing _count")
    else if ((fam in hist_inf) && hist_inf[fam] != hist_count[fam]) {
      printf "check_metrics: histogram %s +Inf bucket %d != _count %d\n", \
        fam, hist_inf[fam], hist_count[fam] > "/dev/stderr"
      bad = 1
    }
  }
  if (bad) exit 1
  n = 0
  for (fam in seen) n++
  printf "check_metrics: OK (%d families with samples)\n", n
}
' "${input}"
