#!/usr/bin/env bash
# Configure + build + test in one step. The fast pre-commit loop is:
#
#   scripts/run_ctest.sh -l unit
#
# Usage: scripts/run_ctest.sh [-l label] [-b build_dir] [-t build_type] [-s]
#   -l LABEL   restrict to a ctest label (unit | stress | property)
#   -b DIR     build directory               (default: build)
#   -t TYPE    CMAKE_BUILD_TYPE              (default: RelWithDebInfo)
#   -s         also enable ASan+UBSan
set -euo pipefail

cd "$(dirname "$0")/.."

label=""
build_dir="build"
build_type="RelWithDebInfo"
sanitize="OFF"

while getopts "l:b:t:sh" opt; do
  case "${opt}" in
    l) label="${OPTARG}" ;;
    b) build_dir="${OPTARG}" ;;
    t) build_type="${OPTARG}" ;;
    s) sanitize="ON" ;;
    h)
      grep '^#' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) exit 2 ;;
  esac
done

cmake -B "${build_dir}" -S . \
  -DCMAKE_BUILD_TYPE="${build_type}" \
  -DMLKV_ENABLE_ASAN="${sanitize}" \
  -DMLKV_ENABLE_UBSAN="${sanitize}"
cmake --build "${build_dir}" -j "$(nproc)"

ctest_args=(--test-dir "${build_dir}" --output-on-failure -j "$(nproc)")
if [[ -n "${label}" ]]; then
  ctest_args+=(-L "${label}")
fi
ctest "${ctest_args[@]}"
